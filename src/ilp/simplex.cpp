#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace wishbone::ilp {

const char* reentry_name(ReentryKind kind) {
  switch (kind) {
    case ReentryKind::kPhase1: return "phase1";
    case ReentryKind::kDual: return "dual";
  }
  return "?";
}

const char* basis_reject_name(BasisRejectReason reason) {
  switch (reason) {
    case BasisRejectReason::kNone: return "none";
    case BasisRejectReason::kShape: return "shape";
    case BasisRejectReason::kStructure: return "structure";
    case BasisRejectReason::kBoundsRevision: return "bounds_revision";
    case BasisRejectReason::kSingular: return "singular";
  }
  return "?";
}

SimplexState::SimplexState(const LinearProgram& lp,
                           const SimplexOptions& opts)
    : opts_(opts), n_struct_(lp.num_variables()),
      m_(lp.num_constraints()), structure_hash_(lp.structure_hash()),
      synced_revision_(lp.bounds_revision()) {
  const int n_total = n_struct_ + m_;
  lo_.resize(n_total);
  up_.resize(n_total);
  cost_.resize(n_total, 0.0);
  cols_.resize(n_total);
  b_.resize(m_, 0.0);
  reduced_costs_.assign(n_struct_, 0.0);
  y_scratch_.assign(m_, 0.0);

  for (int j = 0; j < n_struct_; ++j) {
    lo_[j] = lp.lower(j);
    up_[j] = lp.upper(j);
    cost_[j] = lp.objective_coeff(j);
  }
  for (int i = 0; i < m_; ++i) {
    const Constraint& c = lp.constraints()[i];
    const double sign = (c.rel == Relation::kGe) ? -1.0 : 1.0;
    b_[i] = sign * c.rhs;
    for (const auto& [v, coeff] : c.terms) {
      if (coeff == 0.0) continue;
      // Coalesce duplicate variable mentions within a row: the model
      // treats them additively (objective_value / max_violation), and
      // the basis engines require at most one entry per (row, column).
      // All pushes for row i happen in this pass, so a duplicate is
      // always the column's current back entry.
      auto& col = cols_[v];
      if (!col.empty() && col.back().first == i) {
        col.back().second += sign * coeff;
      } else {
        col.emplace_back(i, sign * coeff);
      }
    }
    const int slack = n_struct_ + i;
    cols_[slack].emplace_back(i, 1.0);
    lo_[slack] = 0.0;
    up_[slack] = (c.rel == Relation::kEq) ? 0.0 : kInf;
  }

  BasisEngineOptions bopts;
  bopts.pivot_eps = opts_.pivot_eps;
  bopts.max_eta =
      opts_.refactor_interval != 0
          ? opts_.refactor_interval
          : std::max<std::size_t>(
                64, std::min<std::size_t>(512,
                                          static_cast<std::size_t>(m_) / 4));
  engine_ = make_basis_engine(opts_.engine, m_, bopts);
  pricing_ = make_pricing_rule(opts_.pricing, n_total, m_, opts_.eps);

  reset();
}

void SimplexState::reset() {
  // Cold start: all slacks basic; structural vars crash-started at the
  // finite bound their objective coefficient prefers (a variable with
  // negative cost wants to be high), which slashes phase-2 pivots on
  // partition instances where most indicators end up at 1. Any
  // feasibility damage is repaired by phase 1.
  const int n_total = n_struct_ + m_;
  basic_.resize(m_);
  x_.assign(n_total, 0.0);
  at_upper_.assign(n_total, false);
  in_basis_.assign(n_total, -1);
  for (int j = 0; j < n_struct_; ++j) {
    const bool has_lo = std::isfinite(lo_[j]);
    const bool has_up = std::isfinite(up_[j]);
    if (has_lo && has_up && cost_[j] < 0.0) {
      x_[j] = up_[j];
      at_upper_[j] = true;
    } else if (has_lo) {
      x_[j] = lo_[j];
    } else if (has_up) {
      x_[j] = up_[j];
      at_upper_[j] = true;
    } else {
      x_[j] = 0.0;  // free variable
    }
  }
  for (int i = 0; i < m_; ++i) {
    basic_[i] = n_struct_ + i;
    in_basis_[n_struct_ + i] = i;
  }
  engine_->set_identity();  // the all-slack basis factorizes trivially
  // All steepest-edge norms of the identity basis are exactly 1, so the
  // plain (approximate) reset is the exact one here.
  pricing_->reset_weights();
  candidates_.clear();
  recompute_basic_values();
  basics_dirty_ = false;
  reduced_costs_valid_ = false;
}

void SimplexState::snap_nonbasic(int j) {
  // A nonbasic variable must rest on one of its finite bounds (free
  // variables keep their value).
  const bool has_lo = std::isfinite(lo_[j]);
  const bool has_up = std::isfinite(up_[j]);
  double nx = x_[j];
  if (at_upper_[j] && has_up) {
    nx = up_[j];
  } else if (has_lo) {
    nx = lo_[j];
    at_upper_[j] = false;
  } else if (has_up) {
    nx = up_[j];
    at_upper_[j] = true;
  }
  if (nx != x_[j]) {
    x_[j] = nx;
    basics_dirty_ = true;
  }
}

void SimplexState::set_bounds(int v, double lo, double up) {
  WB_REQUIRE(v >= 0 && v < n_struct_,
             "set_bounds: structural variable index out of range");
  WB_REQUIRE(lo <= up, "set_bounds: lower > upper");
  if (lo_[v] == lo && up_[v] == up) return;
  lo_[v] = lo;
  up_[v] = up;
  bounds_diverged_ = true;  // state no longer mirrors the source model
  reduced_costs_valid_ = false;
  if (in_basis_[v] < 0) snap_nonbasic(v);
  // Basic variables keep their value; if the edit pushed one outside
  // its bounds, the next solve()'s phase 1 repairs it from this basis.
}

void SimplexState::sync_bounds(const LinearProgram& lp) {
  WB_REQUIRE(lp.num_variables() == n_struct_ &&
                 lp.num_constraints() == m_,
             "sync_bounds: model shape mismatch");
  // The revision short-circuit is only sound when this state still
  // mirrors the model it recorded the revision from: direct set_bounds
  // calls on the state (or a different same-shape model) diverge it.
  if (!bounds_diverged_ && lp.bounds_revision() == synced_revision_) return;
  for (int v = 0; v < n_struct_; ++v) set_bounds(v, lp.lower(v), lp.upper(v));
  synced_revision_ = lp.bounds_revision();
  bounds_diverged_ = false;
}

Basis SimplexState::extract_basis() const {
  Basis b;
  b.basic = basic_;
  b.at_upper.assign(at_upper_.begin(), at_upper_.end());
  b.num_rows = m_;
  b.num_structural = n_struct_;
  b.structure_hash = structure_hash_;
  b.bounds_revision = synced_revision_;
  return b;
}

BasisRejectReason Basis::compatibility_with(const LinearProgram& lp) const {
  if (static_cast<int>(basic.size()) != lp.num_constraints() ||
      static_cast<int>(at_upper.size()) !=
          lp.num_variables() + lp.num_constraints()) {
    return BasisRejectReason::kShape;
  }
  if (stamped() && structure_hash != lp.structure_hash()) {
    return BasisRejectReason::kStructure;
  }
  return BasisRejectReason::kNone;
}

bool Basis::compatible_with(const LinearProgram& lp) const {
  return compatibility_with(lp) == BasisRejectReason::kNone;
}

bool SimplexState::load_basis(const Basis& basis) {
  last_load_reject_ = BasisRejectReason::kNone;
  const int n_total = n_struct_ + m_;
  if (static_cast<int>(basis.basic.size()) != m_ ||
      static_cast<int>(basis.at_upper.size()) != n_total) {
    last_load_reject_ = BasisRejectReason::kShape;
    reset();
    return false;
  }
  // A stamped basis must come from a structurally identical model:
  // matching dimensions alone do not make row i's slack or column j's
  // variable mean the same thing. Loading a structure-mismatched basis
  // is never *unsound* (solve() re-repairs feasibility from any basis),
  // but it installs garbage that phase 1 then grinds away from — the
  // stale-warm-basis bug this check turns into an explicit cold start.
  if (basis.stamped() && basis.structure_hash != structure_hash_) {
    last_load_reject_ = BasisRejectReason::kStructure;
    reset();
    return false;
  }
  // Opt-in strict freshness: a stamped basis extracted against an older
  // bound revision is rejected instead of re-snapped. Default-off — the
  // re-snap is exactly what serve-layer stale-cache re-solves want.
  if (opts_.reject_stale_bounds && basis.stamped() &&
      basis.bounds_revision != synced_revision_) {
    last_load_reject_ = BasisRejectReason::kBoundsRevision;
    reset();
    return false;
  }
  for (int v : basis.basic) {
    if (v < 0 || v >= n_total) {
      last_load_reject_ = BasisRejectReason::kShape;
      reset();
      return false;
    }
  }
  basic_ = basis.basic;
  in_basis_.assign(n_total, -1);
  for (int i = 0; i < m_; ++i) {
    if (in_basis_[basic_[i]] >= 0) {  // duplicate column
      last_load_reject_ = BasisRejectReason::kShape;
      reset();
      return false;
    }
    in_basis_[basic_[i]] = i;
  }
  for (int j = 0; j < n_total; ++j) at_upper_[j] = basis.at_upper[j] != 0;
  if (!refactorize()) {
    last_load_reject_ = BasisRejectReason::kSingular;
    reset();
    return false;
  }
  for (int j = 0; j < n_total; ++j) {
    if (in_basis_[j] < 0) snap_nonbasic(j);
  }
  candidates_.clear();
  recompute_basic_values();
  basics_dirty_ = false;
  reduced_costs_valid_ = false;
  return true;
}

bool SimplexState::refactorize() {
  if (!engine_->factorize(cols_, basic_)) return false;
  reset_pricing_weights();
  return true;
}

void SimplexState::reset_pricing_weights() {
  // Weights are functions of the *basis*, not the factorization, so a
  // refactorization keeps them: devex weights live relative to their
  // reference framework (the rule restarts the framework itself when a
  // weight explodes), and dual steepest-edge row norms ||B^-T e_r||^2
  // merely carry the accumulated drift of the Forrest-Goldfarb
  // updates. exact_weight_reset spends m BTRAN-unit solves here to
  // recompute the true DSE norms and discard that drift; the
  // approximate default keeps the updated values as-is.
  if (opts_.exact_weight_reset && pricing_->kind() == PricingKind::kDse) {
    for (int r = 0; r < m_; ++r) {
      engine_->btran_unit(r, rho_scratch_);
      double nrm = 0.0;
      for (double v : rho_scratch_) nrm += v * v;
      pricing_->set_row_weight(r, nrm);
    }
  }
}

void SimplexState::count_pivot(bool dual) {
  if (dual) {
    ++tel_.dual_pivots;
  } else {
    ++tel_.primal_pivots;
  }
  switch (dual ? pricing_->dual_rule() : pricing_->primal_rule()) {
    case PricingKind::kDantzig: ++tel_.pivots_dantzig; break;
    case PricingKind::kDevex: ++tel_.pivots_devex; break;
    case PricingKind::kDse: ++tel_.pivots_dse; break;
  }
}

double SimplexState::phase1_cost(int var) const {
  if (x_[var] > up_[var] + opts_.eps) return 1.0;
  if (x_[var] < lo_[var] - opts_.eps) return -1.0;
  return 0.0;
}

double SimplexState::total_infeasibility() const {
  double s = 0.0;
  for (int i = 0; i < m_; ++i) {
    const int v = basic_[i];
    s += std::max(0.0, x_[v] - up_[v]);
    s += std::max(0.0, lo_[v] - x_[v]);
  }
  return s;
}

void SimplexState::recompute_basic_values() {
  // xB = B^-1 * (b - sum over nonbasic j of A_j x_j)
  std::vector<double> rhs = b_;
  const int n_total = n_struct_ + m_;
  for (int j = 0; j < n_total; ++j) {
    if (in_basis_[j] >= 0 || x_[j] == 0.0) continue;
    for (const auto& [row, coeff] : cols_[j]) rhs[row] -= coeff * x_[j];
  }
  engine_->ftran_dense(rhs);
  for (int i = 0; i < m_; ++i) x_[basic_[i]] = rhs[i];
}

void SimplexState::compute_duals(bool phase1, std::vector<double>& y) const {
  // y^T = cB^T * B^-1 for the phase's cost vector (a BTRAN).
  y.assign(m_, 0.0);
  for (int i = 0; i < m_; ++i) {
    y[i] = phase1 ? phase1_cost(basic_[i]) : cost_[basic_[i]];
  }
  engine_->btran(y);
}

double SimplexState::reduced_cost_of(int j, bool phase1,
                                     const std::vector<double>& y) const {
  double d = phase1 ? 0.0 : cost_[j];
  for (const auto& [row, coeff] : cols_[j]) d -= y[row] * coeff;
  return d;
}

double SimplexState::entering_sigma(int j, double d) const {
  const bool is_free = !std::isfinite(lo_[j]) && !std::isfinite(up_[j]);
  if (is_free) {
    if (d < -opts_.eps) return 1.0;
    if (d > opts_.eps) return -1.0;
    return 0.0;
  }
  if (at_upper_[j]) {
    return (d > opts_.eps) ? -1.0 : 0.0;  // decreasing reduces cost
  }
  return (d < -opts_.eps) ? 1.0 : 0.0;    // increasing reduces cost
}

const std::vector<double>& SimplexState::reduced_costs() const {
  // Lazy: one dual solve + pricing pass is comparable to a full simplex
  // iteration, so it only runs for callers that actually consume the
  // reduced costs (branch and bound's fixing pass), not on every node
  // LP solve.
  if (!reduced_costs_valid_) {
    compute_duals(/*phase1=*/false, y_scratch_);
    for (int j = 0; j < n_struct_; ++j) {
      reduced_costs_[j] =
          in_basis_[j] >= 0
              ? 0.0
              : reduced_cost_of(j, /*phase1=*/false, y_scratch_);
    }
    reduced_costs_valid_ = true;
  }
  return reduced_costs_;
}

LpSolution SimplexState::solve(double cutoff) {
  LpSolution sol;
  iters_ = 0;
  degenerate_run_ = 0;
  reduced_costs_valid_ = false;  // pivots will move the basis
  if (basics_dirty_) {
    recompute_basic_values();
    basics_dirty_ = false;
  }

  // Dual warm re-entry: bound edits leave reduced costs untouched, so
  // a previously optimal basis is still dual-feasible and the dual
  // simplex restores primal feasibility while *preserving* optimality —
  // the textbook warm-start path for branch-and-bound children, where
  // phase-1 repair discards the dual information and re-proves
  // optimality from scratch. The phase-1/phase-2 loops below still run
  // afterwards as the numerical safety net and the optimality proof
  // (both are no-ops when the dual loop finished clean).
  if (opts_.reentry == ReentryKind::kDual &&
      total_infeasibility() > opts_.eps) {
    if (dual_feasible()) {
      ++tel_.dual_reentries;
      sol.dual_reentry = true;
      const std::size_t dual_start = iters_;
      bool abandoned = false;
      for (;;) {
        const StepOutcome oc = dual_iterate();
        if (oc == StepOutcome::kPivoted) {
          // Early bound cutoff: dual-feasible iterates price a valid
          // lower bound, and it only ever rises — past the caller's
          // cutoff this node is pruned whatever the exact optimum. The
          // slack absorbs the tolerance-level reduced-cost slips the
          // Harris ratio test admits (the bound is exact only under
          // exact dual feasibility), so a borderline node is never cut
          // off on bound noise alone.
          if (std::isfinite(cutoff)) {
            const double slack =
                10.0 * opts_.eps * (1.0 + std::fabs(cutoff));
            double z = 0.0;
            for (int j = 0; j < n_struct_; ++j) z += cost_[j] * x_[j];
            if (z >= cutoff + slack) {
              sol.iterations = iters_;
              sol.dual_iterations = iters_ - dual_start;
              sol.objective = z;
              sol.status = SolveStatus::kCutoff;
              return sol;
            }
          }
          continue;
        }
        if (oc == StepOutcome::kNoDirection) break;  // primal feasible
        if (oc == StepOutcome::kNumericalTrouble) {
          abandoned = true;  // refactorized; phase 1 takes over
          break;
        }
        sol.iterations = iters_;
        sol.dual_iterations = iters_ - dual_start;
        if (oc == StepOutcome::kUnbounded) {
          // Dual unbounded along the violated row: no admissible
          // entering column can absorb it — the primal is infeasible.
          sol.status = SolveStatus::kInfeasible;
        } else {
          sol.status = SolveStatus::kIterationLimit;
        }
        return sol;
      }
      sol.dual_iterations = iters_ - dual_start;
      if (abandoned) ++tel_.phase1_fallbacks;
      degenerate_run_ = 0;
      candidates_.clear();  // dual pivots staled the primal price list
    } else {
      // Not dual-feasible at entry (cost-perturbed or foreign basis):
      // composite phase 1 is the only repair path.
      ++tel_.phase1_fallbacks;
    }
  }
  if (total_infeasibility() > opts_.eps) ++tel_.phase1_reentries;

  // Phase 1: drive basic-variable bound violations to zero, starting
  // from whatever basis this state currently holds (warm re-entry after
  // bound edits, an inherited basis, or the cold crash basis).
  while (total_infeasibility() > opts_.eps) {
    const StepOutcome oc = iterate(/*phase1=*/true);
    if (oc == StepOutcome::kNoDirection) {
      sol.status = SolveStatus::kInfeasible;
      sol.iterations = iters_;
      return sol;
    }
    if (oc == StepOutcome::kIterLimit) {
      sol.status = SolveStatus::kIterationLimit;
      sol.iterations = iters_;
      return sol;
    }
    if (oc == StepOutcome::kUnbounded) {
      // Phase-1 objective is bounded below; an unblocked ray means
      // numerical trouble. Report as an iteration failure.
      sol.status = SolveStatus::kIterationLimit;
      sol.iterations = iters_;
      return sol;
    }
  }
  candidates_.clear();  // phase-1 scores are stale for phase 2
  // Phase 2: optimize the true objective.
  for (;;) {
    const StepOutcome oc = iterate(/*phase1=*/false);
    if (oc == StepOutcome::kNoDirection) break;  // optimal
    if (oc == StepOutcome::kUnbounded) {
      sol.status = SolveStatus::kUnbounded;
      sol.iterations = iters_;
      return sol;
    }
    if (oc == StepOutcome::kIterLimit) {
      sol.status = SolveStatus::kIterationLimit;
      sol.iterations = iters_;
      return sol;
    }
  }
  sol.status = SolveStatus::kOptimal;
  sol.iterations = iters_;
  sol.x.assign(x_.begin(), x_.begin() + n_struct_);
  sol.objective = 0.0;
  for (int j = 0; j < n_struct_; ++j) sol.objective += cost_[j] * x_[j];
  return sol;
}

SimplexState::StepOutcome SimplexState::iterate(bool phase1) {
  if (iters_ >= opts_.max_iterations) return StepOutcome::kIterLimit;
  ++iters_;

  compute_duals(phase1, y_scratch_);
  const std::vector<double>& y = y_scratch_;

  // Pricing: find an entering variable. The candidate list from the
  // last full scan is tried first; a full scan runs only when the list
  // is dry (and doubles as the optimality proof when it finds nothing).
  // Bland's rule (first eligible by index) takes over after a run of
  // degenerate steps.
  const bool bland = degenerate_run_ >= 50;
  const int n_total = n_struct_ + m_;
  int enter = -1;
  double enter_sigma = 0.0;
  // Scores come from the pricing rule (smaller is better). Dantzig's
  // floor is -eps — its |d| scores are commensurable with the
  // reduced-cost tolerance — which keeps this loop bit-identical to
  // the pre-PricingRule solver; weighted rules floor at 0.
  double best_score = pricing_->score_floor();

  if (bland) {
    for (int j = 0; j < n_total; ++j) {
      if (in_basis_[j] >= 0 || lo_[j] == up_[j]) continue;
      const double d = reduced_cost_of(j, phase1, y);
      const double sigma = entering_sigma(j, d);
      if (sigma != 0.0) {
        enter = j;
        enter_sigma = sigma;
        break;
      }
    }
  } else {
    if (!candidates_.empty()) {
      for (int j : candidates_) {
        if (in_basis_[j] >= 0 || lo_[j] == up_[j]) continue;
        const double d = reduced_cost_of(j, phase1, y);
        const double sigma = entering_sigma(j, d);
        if (sigma == 0.0) continue;
        const double score = pricing_->score(j, d);
        if (score < best_score) {
          best_score = score;
          enter = j;
          enter_sigma = sigma;
        }
      }
    }
    if (enter == -1) {
      // Full pricing scan; rebuild the candidate list from the runners-
      // up so the next pivots price only this short list.
      std::vector<std::pair<double, int>>& eligible = eligible_scratch_;
      eligible.clear();  // (score, j)
      for (int j = 0; j < n_total; ++j) {
        if (in_basis_[j] >= 0 || lo_[j] == up_[j]) continue;
        const double d = reduced_cost_of(j, phase1, y);
        const double sigma = entering_sigma(j, d);
        if (sigma == 0.0) continue;
        const double score = pricing_->score(j, d);
        if (score < best_score) {
          best_score = score;
          enter = j;
          enter_sigma = sigma;
        }
        if (opts_.candidate_list_size > 0) eligible.emplace_back(score, j);
      }
      candidates_.clear();
      if (enter != -1 && opts_.candidate_list_size > 0) {
        const std::size_t keep =
            std::min(opts_.candidate_list_size, eligible.size());
        std::partial_sort(eligible.begin(), eligible.begin() + keep,
                          eligible.end());
        for (std::size_t i = 0; i < keep; ++i) {
          if (eligible[i].second != enter) {
            candidates_.push_back(eligible[i].second);
          }
        }
      }
    }
  }
  if (enter == -1) return StepOutcome::kNoDirection;

  // Direction through the basis: w = B^-1 * A_enter (an FTRAN).
  std::vector<double>& w = w_scratch_;
  engine_->ftran(cols_[enter], w);

  // Ratio test. The entering variable moves by t >= 0 in direction
  // enter_sigma; basic k changes at rate -enter_sigma * w[k].
  double t_max = kInf;
  int leave_row = -1;
  double leave_bound = 0.0;
  bool bound_flip = false;
  const double span = up_[enter] - lo_[enter];
  if (std::isfinite(span)) {
    t_max = span;
    bound_flip = true;
  }
  for (int k = 0; k < m_; ++k) {
    const double delta = enter_sigma * w[k];  // rate of decrease of xB_k
    if (std::fabs(delta) < opts_.pivot_eps) continue;
    const int v = basic_[k];
    const double xv = x_[v];
    double t = kInf;
    double bound = 0.0;
    if (phase1 && xv > up_[v] + opts_.eps) {
      // Infeasible above: only a downward move blocks, at the upper
      // bound (first slope change of the phase-1 cost).
      if (delta > 0) {
        bound = up_[v];
        t = (xv - bound) / delta;
      }
    } else if (phase1 && xv < lo_[v] - opts_.eps) {
      if (delta < 0) {
        bound = lo_[v];
        t = (xv - bound) / delta;
      }
    } else {
      if (delta > 0) {
        if (!std::isfinite(lo_[v])) continue;
        bound = lo_[v];
        t = (xv - bound) / delta;
      } else {
        if (!std::isfinite(up_[v])) continue;
        bound = up_[v];
        t = (xv - bound) / delta;
      }
    }
    t = std::max(t, 0.0);  // numerical: clamp tiny negatives
    // Strict improvement takes the block; on (near-)ties prefer the
    // smallest leaving variable index for determinism and as the
    // Bland anti-cycling tie-break.
    const bool tie = leave_row >= 0 && std::fabs(t - t_max) <= opts_.eps;
    if (t < t_max - opts_.pivot_eps ||
        (tie && v < basic_[leave_row])) {
      t_max = t;
      leave_row = k;
      leave_bound = bound;
      bound_flip = false;
    }
  }

  if (!std::isfinite(t_max)) return StepOutcome::kUnbounded;

  degenerate_run_ = (t_max <= opts_.eps) ? degenerate_run_ + 1 : 0;

  // Apply the step.
  x_[enter] += enter_sigma * t_max;
  for (int k = 0; k < m_; ++k) {
    x_[basic_[k]] -= enter_sigma * t_max * w[k];
  }
  if (bound_flip) {
    at_upper_[enter] = !at_upper_[enter];
    // Snap exactly onto the bound to stop drift.
    x_[enter] = at_upper_[enter] ? up_[enter] : lo_[enter];
    count_pivot(/*dual=*/false);
    return StepOutcome::kPivoted;
  }

  WB_ASSERT(leave_row >= 0);
  const int leaving = basic_[leave_row];
  x_[leaving] = leave_bound;
  at_upper_[leaving] =
      std::isfinite(up_[leaving]) && leave_bound == up_[leaving];
  in_basis_[leaving] = -1;
  basic_[leave_row] = enter;
  in_basis_[enter] = leave_row;

  if (pricing_->needs_pivot_row()) {
    // Devex weight maintenance wants the pivot row restricted to the
    // columns it will price again — the candidate list. Both rho and
    // alpha_q = w[leave_row] are taken against the pre-update
    // factorization (the engine absorbs the pivot just below).
    engine_->btran_unit(leave_row, rho_scratch_);
    alpha_scratch_.clear();
    for (int j : candidates_) {
      if (in_basis_[j] >= 0) continue;
      double a = 0.0;
      for (const auto& [row, coeff] : cols_[j]) a += rho_scratch_[row] * coeff;
      if (a != 0.0) alpha_scratch_.emplace_back(j, a);
    }
    pricing_->primal_update(enter, leaving, w[leave_row], alpha_scratch_);
  }

  // Absorb the pivot into the basis engine (dense: elementary row
  // update; LU: append an eta vector). The engine declines when its
  // eta file is full or the pivot is too unstable to chain — then a
  // fresh factorization of the *new* basis replaces the whole file.
  WB_ASSERT_MSG(std::fabs(w[leave_row]) > opts_.pivot_eps,
                "degenerate pivot");
  if (!engine_->update(leave_row, w)) {
    if (!refactorize()) {
      // The ratio test admitted this pivot, so the new basis is
      // singular only through accumulated floating-point damage. A
      // failed factorization leaves the engine's factors half-built;
      // reset() restores a coherent cold state so a caller that
      // re-enters this SimplexState gets a valid (cold) solve instead
      // of silent garbage, and this solve reports the failure.
      reset();
      return StepOutcome::kIterLimit;
    }
  }

  count_pivot(/*dual=*/false);
  // Periodic refresh to contain floating-point drift.
  if (iters_ % 512 == 0) recompute_basic_values();
  return StepOutcome::kPivoted;
}

bool SimplexState::dual_feasible() {
  // Every nonbasic reduced cost must carry the sign its bound status
  // requires for a *minimization*: at-lower columns d >= 0 (raising
  // them cannot improve), at-upper d <= 0, free columns d == 0 — all
  // within the reduced-cost tolerance. Bound edits never change
  // reduced costs, so a basis that last solved to optimality passes
  // — *except* that replaying a different subtree's bound deltas can
  // leave a boxed nonbasic parked at the wrong bound for its reduced
  // cost (e.g. a variable fixed-then-unfixed along the chain). Those
  // are not genuine dual infeasibilities: flipping the variable to its
  // other finite bound restores the sign condition without touching
  // the basis or the duals, so repair them here instead of punting the
  // whole re-entry to phase 1. Only a free column (or one whose
  // opposite bound is infinite) with a wrong-signed reduced cost
  // forces the fallback.
  compute_duals(/*phase1=*/false, y_scratch_);
  const int n_total = n_struct_ + m_;
  bool ok = true;
  bool flipped = false;
  for (int j = 0; j < n_total; ++j) {
    if (in_basis_[j] >= 0 || lo_[j] == up_[j]) continue;
    const double d = reduced_cost_of(j, /*phase1=*/false, y_scratch_);
    const bool is_free = !std::isfinite(lo_[j]) && !std::isfinite(up_[j]);
    if (is_free) {
      if (std::fabs(d) > opts_.eps) ok = false;
    } else if (at_upper_[j]) {
      if (d > opts_.eps) {
        if (!std::isfinite(lo_[j])) {
          ok = false;
        } else {
          x_[j] = lo_[j];
          at_upper_[j] = false;
          flipped = true;
        }
      }
    } else {
      if (d < -opts_.eps) {
        if (!std::isfinite(up_[j])) {
          ok = false;
        } else {
          x_[j] = up_[j];
          at_upper_[j] = true;
          flipped = true;
        }
      }
    }
  }
  // Flips move nonbasic values, so the basic values must be re-derived
  // — also on the failure path, where phase 1 takes over from the
  // (legal) flipped point.
  if (flipped) recompute_basic_values();
  return ok;
}

SimplexState::StepOutcome SimplexState::dual_iterate() {
  if (iters_ >= opts_.max_iterations) return StepOutcome::kIterLimit;
  ++iters_;

  // --- Leaving row: the most attractive bound violation by the
  // pricing rule's row score (Bland regime: smallest variable index,
  // mirroring the primal anti-cycling guard).
  const bool bland = degenerate_run_ >= 50;
  int leave_row = -1;
  double best_score = 0.0;
  double dir = 0.0;  // +1: violated above upper; -1: below lower
  for (int k = 0; k < m_; ++k) {
    const int v = basic_[k];
    const double above = x_[v] - up_[v];
    const double below = lo_[v] - x_[v];
    const double infeas = std::max(above, below);
    if (infeas <= opts_.eps) continue;
    if (bland) {
      if (leave_row < 0 || v < basic_[leave_row]) {
        leave_row = k;
        dir = (above >= below) ? 1.0 : -1.0;
      }
    } else {
      const double score = pricing_->row_score(k, infeas);
      if (leave_row < 0 || score > best_score) {
        best_score = score;
        leave_row = k;
        dir = (above >= below) ? 1.0 : -1.0;
      }
    }
  }
  if (leave_row < 0) return StepOutcome::kNoDirection;  // primal feasible

  const int leaving = basic_[leave_row];
  const double target = (dir > 0.0) ? up_[leaving] : lo_[leaving];

  // --- Pivot row rho = B^-T e_r and current duals (for the ratio
  // test's reduced costs).
  engine_->btran_unit(leave_row, rho_scratch_);
  compute_duals(/*phase1=*/false, y_scratch_);
  const std::vector<double>& rho = rho_scratch_;
  const std::vector<double>& y = y_scratch_;

  // --- Dual ratio test. Orient the pivot row toward the violation:
  // abar_j = dir * (rho . A_j). A nonbasic column is an admissible
  // entering candidate when moving it off its bound pulls the leaving
  // variable toward `target`: at-lower columns need abar > 0, at-upper
  // abar < 0, free columns qualify either way. theta_j = d_j / abar_j
  // (>= 0 under dual feasibility) is the dual step length at which
  // column j's reduced cost crosses zero — the smallest theta keeps
  // every other reduced cost sign-correct.
  const int n_total = n_struct_ + m_;
  dual_cands_.clear();
  for (int j = 0; j < n_total; ++j) {
    if (in_basis_[j] >= 0 || lo_[j] == up_[j]) continue;
    double alpha = 0.0;
    for (const auto& [row, coeff] : cols_[j]) alpha += rho[row] * coeff;
    const double abar = dir * alpha;
    if (std::fabs(abar) <= opts_.pivot_eps) continue;
    const bool is_free = !std::isfinite(lo_[j]) && !std::isfinite(up_[j]);
    if (!is_free && (at_upper_[j] ? (abar > 0.0) : (abar < 0.0))) continue;
    const double d = reduced_cost_of(j, /*phase1=*/false, y);
    DualCand c;
    c.theta = std::max(d / abar, 0.0);  // clamp tolerance-level negatives
    c.j = j;
    c.abar = abar;
    dual_cands_.push_back(c);
  }
  if (dual_cands_.empty()) {
    // No column can absorb the violated row: the dual is unbounded
    // along e_r, i.e. the primal is infeasible.
    return StepOutcome::kUnbounded;
  }
  std::sort(dual_cands_.begin(), dual_cands_.end(),
            [](const DualCand& a, const DualCand& b) {
              if (a.theta != b.theta) return a.theta < b.theta;
              return a.j < b.j;  // deterministic, Bland-style tie-break
            });

  // --- Bound-flip ratio test: a candidate whose whole span absorbs
  // less violation than remains can jump to its other bound instead of
  // entering; the dual step then passes its theta (its reduced cost
  // changes sign, which the flip makes consistent) and the walk
  // continues with the next candidate. Skipped in the Bland regime —
  // flips are the kind of extra move the anti-cycling argument
  // excludes.
  double delta_rem = std::fabs(x_[leaving] - target);
  flip_scratch_.clear();
  std::size_t pick = 0;
  if (!bland) {
    while (pick + 1 < dual_cands_.size()) {
      const DualCand& c = dual_cands_[pick];
      const double span = up_[c.j] - lo_[c.j];
      if (!std::isfinite(span)) break;
      const double absorb = std::fabs(c.abar) * span;
      if (absorb >= delta_rem - opts_.eps) break;
      flip_scratch_.push_back(c.j);
      delta_rem -= absorb;
      ++pick;
    }
  }
  // Harris two-pass ratio test over the remaining candidates. Pass 1:
  // the largest dual step that keeps every reduced cost within the
  // tolerance, theta_H = min_q (d_q + eps)/|abar_q| — a candidate with
  // a tiny pivot element hardly constrains it. Pass 2: among the
  // candidates whose own theta fits under theta_H, enter the one with
  // the largest |abar|. The payoff on this massively degenerate model
  // is the primal step t = infeas/alpha_q: the strict-minimum rule
  // breaks its many theta ties by index and routinely lands on a
  // near-pivot_eps element, whose huge t knocks a dozen other basics
  // out of their bounds (measured ~12 follow-on violations per entry
  // violation); maximizing |abar| keeps t small and the repair local.
  // The tolerance-level reduced-cost slips this admits are exactly the
  // ones dual_feasible() already tolerates, and later iterations clamp
  // them to degenerate steps. Bland regime keeps the strict minimum
  // for the anti-cycling argument.
  std::size_t chosen_ix = pick;
  if (!bland) {
    double theta_h = kInf;
    for (std::size_t q = pick; q < dual_cands_.size(); ++q) {
      const double cap =
          dual_cands_[q].theta + opts_.eps / std::fabs(dual_cands_[q].abar);
      if (cap < theta_h) theta_h = cap;
    }
    double best_abar = 0.0;
    for (std::size_t q = pick; q < dual_cands_.size(); ++q) {
      if (dual_cands_[q].theta > theta_h) continue;
      const double mag = std::fabs(dual_cands_[q].abar);
      if (mag > best_abar) {
        best_abar = mag;
        chosen_ix = q;
      }
    }
  }
  const DualCand chosen = dual_cands_[chosen_ix];
  const int enter = chosen.j;

  if (!flip_scratch_.empty()) {
    // Apply every flip with one accumulated FTRAN:
    // x_B -= B^-1 (sum_j A_j dx_j).
    rhs_scratch_.assign(m_, 0.0);
    for (int j : flip_scratch_) {
      const double nx = at_upper_[j] ? lo_[j] : up_[j];
      const double dx = nx - x_[j];
      at_upper_[j] = !at_upper_[j];
      x_[j] = nx;
      for (const auto& [row, coeff] : cols_[j]) {
        rhs_scratch_[row] += coeff * dx;
      }
    }
    engine_->ftran_dense(rhs_scratch_);
    for (int i = 0; i < m_; ++i) x_[basic_[i]] -= rhs_scratch_[i];
  }

  // --- Entering direction w = B^-1 A_enter. Its leave_row entry must
  // agree with the row-computed alpha (same sign, non-tiny): a
  // disagreement means the factorization has drifted too far to trust
  // this pivot — rebuild it and let the caller fall back to phase-1
  // repair.
  std::vector<double>& w = w_scratch_;
  engine_->ftran(cols_[enter], w);
  const double alpha_q = w[leave_row];
  if (std::fabs(alpha_q) <= opts_.pivot_eps ||
      alpha_q * (dir * chosen.abar) <= 0.0) {
    if (!refactorize()) {
      reset();
      return StepOutcome::kIterLimit;
    }
    recompute_basic_values();
    return StepOutcome::kNumericalTrouble;
  }

  degenerate_run_ = (chosen.theta <= opts_.eps && flip_scratch_.empty())
                        ? degenerate_run_ + 1
                        : 0;

  // --- Pivot: move the entering column until the leaving variable
  // lands exactly on its violated bound.
  const double t = (x_[leaving] - target) / alpha_q;
  x_[enter] += t;
  for (int k = 0; k < m_; ++k) x_[basic_[k]] -= t * w[k];
  x_[leaving] = target;  // snap exactly to stop drift
  at_upper_[leaving] = (dir > 0.0);
  in_basis_[leaving] = -1;
  basic_[leave_row] = enter;
  in_basis_[enter] = leave_row;

  // Steepest-edge weight maintenance; tau = B^-1 rho against the
  // pre-update factorization, only for rules that ask for it.
  if (pricing_->needs_dual_tau()) {
    tau_scratch_ = rho;
    engine_->ftran_dense(tau_scratch_);
    pricing_->dual_update(leave_row, enter, alpha_q, w, tau_scratch_);
  } else {
    pricing_->dual_update(leave_row, enter, alpha_q, w, empty_tau_);
  }

  if (!engine_->update(leave_row, w)) {
    if (!refactorize()) {
      // Same contract as the primal loop: a post-pivot singular
      // factorization leaves only the cold reset as a coherent state.
      reset();
      return StepOutcome::kIterLimit;
    }
  }
  count_pivot(/*dual=*/true);
  if (iters_ % 512 == 0) recompute_basic_values();
  return StepOutcome::kPivoted;
}

LpSolution SimplexSolver::solve(const LinearProgram& lp,
                                const SimplexOptions& opts) const {
  WB_REQUIRE(lp.num_variables() > 0, "LP has no variables");
  SimplexState state(lp, opts);
  return state.solve();
}

}  // namespace wishbone::ilp
