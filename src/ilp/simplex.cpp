#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace wishbone::ilp {

namespace {

/// Internal working form: minimize c.x subject to Ax (<=|==) b with
/// variable bounds; one slack per row so the all-slack basis exists.
class Tableau {
 public:
  Tableau(const LinearProgram& lp, const SimplexOptions& opts)
      : opts_(opts), n_struct_(lp.num_variables()),
        m_(lp.num_constraints()) {
    const int n_total = n_struct_ + m_;
    lo_.resize(n_total);
    up_.resize(n_total);
    cost_.resize(n_total, 0.0);
    cols_.resize(n_total);
    b_.resize(m_, 0.0);

    for (int j = 0; j < n_struct_; ++j) {
      lo_[j] = lp.lower(j);
      up_[j] = lp.upper(j);
      cost_[j] = lp.objective_coeff(j);
    }
    for (int i = 0; i < m_; ++i) {
      const Constraint& c = lp.constraints()[i];
      const double sign = (c.rel == Relation::kGe) ? -1.0 : 1.0;
      b_[i] = sign * c.rhs;
      for (const auto& [v, coeff] : c.terms) {
        if (coeff != 0.0) cols_[v].emplace_back(i, sign * coeff);
      }
      const int slack = n_struct_ + i;
      cols_[slack].emplace_back(i, 1.0);
      lo_[slack] = 0.0;
      up_[slack] = (c.rel == Relation::kEq) ? 0.0 : kInf;
    }

    // Initial state: all slacks basic; structural vars crash-started at
    // the finite bound their objective coefficient prefers (a variable
    // with negative cost wants to be high), which slashes phase-2
    // pivots on partition instances where most indicators end up at 1.
    // Any feasibility damage is repaired by phase 1.
    basic_.resize(m_);
    x_.resize(n_total, 0.0);
    at_upper_.resize(n_total, false);
    in_basis_.assign(n_total, -1);
    for (int j = 0; j < n_struct_; ++j) {
      const bool has_lo = std::isfinite(lo_[j]);
      const bool has_up = std::isfinite(up_[j]);
      if (has_lo && has_up && cost_[j] < 0.0) {
        x_[j] = up_[j];
        at_upper_[j] = true;
      } else if (has_lo) {
        x_[j] = lo_[j];
      } else if (has_up) {
        x_[j] = up_[j];
        at_upper_[j] = true;
      } else {
        x_[j] = 0.0;  // free variable
      }
    }
    for (int i = 0; i < m_; ++i) {
      basic_[i] = n_struct_ + i;
      in_basis_[n_struct_ + i] = i;
    }
    binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) binv_at(i, i) = 1.0;
    recompute_basic_values();
  }

  LpSolution run() {
    LpSolution sol;
    // Phase 1: drive basic-variable bound violations to zero.
    while (total_infeasibility() > opts_.eps) {
      const StepOutcome oc = iterate(/*phase1=*/true);
      if (oc == StepOutcome::kNoDirection) {
        sol.status = SolveStatus::kInfeasible;
        sol.iterations = iters_;
        return sol;
      }
      if (oc == StepOutcome::kIterLimit) {
        sol.status = SolveStatus::kIterationLimit;
        sol.iterations = iters_;
        return sol;
      }
      if (oc == StepOutcome::kUnbounded) {
        // Phase-1 objective is bounded below; an unblocked ray means
        // numerical trouble. Report as an iteration failure.
        sol.status = SolveStatus::kIterationLimit;
        sol.iterations = iters_;
        return sol;
      }
    }
    // Phase 2: optimize the true objective.
    for (;;) {
      const StepOutcome oc = iterate(/*phase1=*/false);
      if (oc == StepOutcome::kNoDirection) break;  // optimal
      if (oc == StepOutcome::kUnbounded) {
        sol.status = SolveStatus::kUnbounded;
        sol.iterations = iters_;
        return sol;
      }
      if (oc == StepOutcome::kIterLimit) {
        sol.status = SolveStatus::kIterationLimit;
        sol.iterations = iters_;
        return sol;
      }
    }
    sol.status = SolveStatus::kOptimal;
    sol.iterations = iters_;
    sol.x.assign(x_.begin(), x_.begin() + n_struct_);
    sol.objective = 0.0;
    for (int j = 0; j < n_struct_; ++j) sol.objective += cost_[j] * x_[j];
    return sol;
  }

 private:
  enum class StepOutcome { kPivoted, kNoDirection, kUnbounded, kIterLimit };

  double& binv_at(int r, int c) {
    return binv_[static_cast<std::size_t>(r) * m_ + c];
  }
  [[nodiscard]] double binv_at(int r, int c) const {
    return binv_[static_cast<std::size_t>(r) * m_ + c];
  }

  /// Phase-1 cost of a basic variable: +1 above its upper bound, -1
  /// below its lower bound, 0 when feasible.
  [[nodiscard]] double phase1_cost(int var) const {
    if (x_[var] > up_[var] + opts_.eps) return 1.0;
    if (x_[var] < lo_[var] - opts_.eps) return -1.0;
    return 0.0;
  }

  [[nodiscard]] double total_infeasibility() const {
    double s = 0.0;
    for (int i = 0; i < m_; ++i) {
      const int v = basic_[i];
      s += std::max(0.0, x_[v] - up_[v]);
      s += std::max(0.0, lo_[v] - x_[v]);
    }
    return s;
  }

  void recompute_basic_values() {
    // xB = Binv * (b - sum over nonbasic j of A_j x_j)
    std::vector<double> rhs = b_;
    const int n_total = n_struct_ + m_;
    for (int j = 0; j < n_total; ++j) {
      if (in_basis_[j] >= 0 || x_[j] == 0.0) continue;
      for (const auto& [row, coeff] : cols_[j]) rhs[row] -= coeff * x_[j];
    }
    for (int i = 0; i < m_; ++i) {
      double v = 0.0;
      for (int k = 0; k < m_; ++k) v += binv_at(i, k) * rhs[k];
      x_[basic_[i]] = v;
    }
  }

  /// One pricing + ratio-test + pivot step. Returns kNoDirection when no
  /// improving nonbasic variable exists (optimal for the current phase).
  StepOutcome iterate(bool phase1) {
    if (iters_ >= opts_.max_iterations) return StepOutcome::kIterLimit;
    ++iters_;

    // y = cB' * Binv for the phase's cost vector.
    std::vector<double> y(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      const double cb = phase1 ? phase1_cost(basic_[i]) : cost_[basic_[i]];
      if (cb == 0.0) continue;
      for (int k = 0; k < m_; ++k) y[k] += cb * binv_at(i, k);
    }

    // Pricing: find an entering variable. Dantzig rule normally; Bland's
    // rule (first eligible) after a run of degenerate steps.
    const bool bland = degenerate_run_ >= 50;
    const int n_total = n_struct_ + m_;
    int enter = -1;
    double enter_sigma = 0.0;
    double best_score = phase1 ? -opts_.eps : -opts_.eps;
    for (int j = 0; j < n_total; ++j) {
      if (in_basis_[j] >= 0) continue;
      if (lo_[j] == up_[j]) continue;  // fixed: can never move
      double d = phase1 ? 0.0 : cost_[j];
      for (const auto& [row, coeff] : cols_[j]) d -= y[row] * coeff;
      const bool is_free = !std::isfinite(lo_[j]) && !std::isfinite(up_[j]);
      double sigma = 0.0;
      if (is_free) {
        if (d < -opts_.eps) sigma = 1.0;
        else if (d > opts_.eps) sigma = -1.0;
      } else if (at_upper_[j]) {
        if (d > opts_.eps) sigma = -1.0;  // decreasing reduces cost
      } else {
        if (d < -opts_.eps) sigma = 1.0;  // increasing reduces cost
      }
      if (sigma == 0.0) continue;
      if (bland) {
        enter = j;
        enter_sigma = sigma;
        break;
      }
      const double score = -std::fabs(d);
      if (score < best_score) {
        best_score = score;
        enter = j;
        enter_sigma = sigma;
      }
    }
    if (enter == -1) return StepOutcome::kNoDirection;

    // Direction through the basis: w = Binv * A_enter.
    std::vector<double> w(m_, 0.0);
    for (const auto& [row, coeff] : cols_[enter]) {
      for (int i = 0; i < m_; ++i) w[i] += binv_at(i, row) * coeff;
    }

    // Ratio test. The entering variable moves by t >= 0 in direction
    // enter_sigma; basic k changes at rate -enter_sigma * w[k].
    double t_max = kInf;
    int leave_row = -1;
    double leave_bound = 0.0;
    bool bound_flip = false;
    const double span = up_[enter] - lo_[enter];
    if (std::isfinite(span)) {
      t_max = span;
      bound_flip = true;
    }
    for (int k = 0; k < m_; ++k) {
      const double delta = enter_sigma * w[k];  // rate of decrease of xB_k
      if (std::fabs(delta) < opts_.pivot_eps) continue;
      const int v = basic_[k];
      const double xv = x_[v];
      double t = kInf;
      double bound = 0.0;
      if (phase1 && xv > up_[v] + opts_.eps) {
        // Infeasible above: only a downward move blocks, at the upper
        // bound (first slope change of the phase-1 cost).
        if (delta > 0) {
          bound = up_[v];
          t = (xv - bound) / delta;
        }
      } else if (phase1 && xv < lo_[v] - opts_.eps) {
        if (delta < 0) {
          bound = lo_[v];
          t = (xv - bound) / delta;
        }
      } else {
        if (delta > 0) {
          if (!std::isfinite(lo_[v])) continue;
          bound = lo_[v];
          t = (xv - bound) / delta;
        } else {
          if (!std::isfinite(up_[v])) continue;
          bound = up_[v];
          t = (xv - bound) / delta;
        }
      }
      t = std::max(t, 0.0);  // numerical: clamp tiny negatives
      // Strict improvement takes the block; on (near-)ties prefer the
      // smallest leaving variable index for determinism and as the
      // Bland anti-cycling tie-break.
      const bool tie = leave_row >= 0 && std::fabs(t - t_max) <= opts_.eps;
      if (t < t_max - opts_.pivot_eps ||
          (tie && v < basic_[leave_row])) {
        t_max = t;
        leave_row = k;
        leave_bound = bound;
        bound_flip = false;
      }
    }

    if (!std::isfinite(t_max)) return StepOutcome::kUnbounded;

    degenerate_run_ = (t_max <= opts_.eps) ? degenerate_run_ + 1 : 0;

    // Apply the step.
    x_[enter] += enter_sigma * t_max;
    for (int k = 0; k < m_; ++k) {
      x_[basic_[k]] -= enter_sigma * t_max * w[k];
    }
    if (bound_flip) {
      at_upper_[enter] = !at_upper_[enter];
      // Snap exactly onto the bound to stop drift.
      x_[enter] = at_upper_[enter] ? up_[enter] : lo_[enter];
      return StepOutcome::kPivoted;
    }

    WB_ASSERT(leave_row >= 0);
    const int leaving = basic_[leave_row];
    x_[leaving] = leave_bound;
    at_upper_[leaving] =
        std::isfinite(up_[leaving]) && leave_bound == up_[leaving];
    in_basis_[leaving] = -1;
    basic_[leave_row] = enter;
    in_basis_[enter] = leave_row;

    // Binv update: eliminate the entering column from all other rows.
    const double piv = w[leave_row];
    WB_ASSERT_MSG(std::fabs(piv) > opts_.pivot_eps, "degenerate pivot");
    for (int c = 0; c < m_; ++c) binv_at(leave_row, c) /= piv;
    for (int k = 0; k < m_; ++k) {
      if (k == leave_row || std::fabs(w[k]) < 1e-14) continue;
      const double f = w[k];
      for (int c = 0; c < m_; ++c) {
        binv_at(k, c) -= f * binv_at(leave_row, c);
      }
    }

    // Periodic refresh to contain floating-point drift.
    if (iters_ % 512 == 0) recompute_basic_values();
    return StepOutcome::kPivoted;
  }

  const SimplexOptions opts_;
  const int n_struct_;
  const int m_;

  std::vector<double> lo_, up_, cost_, b_;
  std::vector<std::vector<std::pair<int, double>>> cols_;

  std::vector<int> basic_;
  std::vector<int> in_basis_;
  std::vector<bool> at_upper_;
  std::vector<double> x_;
  std::vector<double> binv_;

  std::size_t iters_ = 0;
  int degenerate_run_ = 0;
};

}  // namespace

LpSolution SimplexSolver::solve(const LinearProgram& lp,
                                const SimplexOptions& opts) const {
  WB_REQUIRE(lp.num_variables() > 0, "LP has no variables");
  Tableau t(lp, opts);
  return t.run();
}

}  // namespace wishbone::ilp
