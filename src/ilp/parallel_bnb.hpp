// Multithreaded best-first branch and bound: the one tree-search
// implementation behind BranchAndBound, at any worker count.
//
// Decomposition (mirroring how distributed Newton methods scale
// structured optimization: independent subproblem solves coordinated
// through a small shared state):
//
//  - N workers, each with a *private* SimplexState — the PR 1/PR 2
//    observation that the shared simplex state is the only contention
//    point, resolved by giving every worker its own factorized basis.
//  - A sharded node pool (one deterministic heap per worker) with work
//    stealing: a worker pushes its children to its own shard (locality:
//    the child differs from the basis it just left by one bound) and
//    steals the best node from a sibling's shard only when its own runs
//    dry — the diving tail where a single shard would serialize.
//  - An atomic incumbent: pruning and reduced-cost fixing read it
//    lock-free. Stale reads are *conservative* — the incumbent only
//    ever decreases, so a stale (higher) value prunes and fixes less,
//    never more. Updates re-check under a mutex.
//  - Global best-bound aggregation: every worker publishes its
//    in-flight node's bound under the same shard lock that pops the
//    node, so a scan holding all shard locks (idle path only — the
//    hot paths never take more than their own) sees every unresolved
//    subtree. Idle workers use it to stop the whole search once the
//    gap closes; limit-censored runs price MipResult::best_bound from
//    the post-join open set.
//  - Basis-snapshot handoff: when threads > 1, an expanded node
//    attaches its parent's basis (one extract_basis, shared by both
//    children). A worker that *steals* a node lands far from its own
//    subtree, so it reloads the snapshot via SimplexState::load_basis
//    — one refactorization — instead of phase-1-repairing from an
//    unrelated stale basis. Locally popped nodes skip the reload; the
//    warm basis in the worker's state is already a near ancestor.
//
// Determinism contract: identical objectives and proof outcomes at any
// thread count (node and iteration *counts* vary with interleaving).
// The node heaps order by bound, then depth; remaining ties resolve by
// the heap's deterministic sift order — NOT by creation index, a
// deliberate, measured choice (see NodeCompare in parallel_bnb.cpp:
// every total tie order tried cost 11–126% more LP iterations on the
// Fig. 6 sweep). Serial runs (threads == 1, executed inline with no
// spawn) are bit-reproducible run-to-run because their push/pop
// sequence, and hence the heap layout, is itself deterministic.
#pragma once

#include "ilp/branch_and_bound.hpp"

namespace wishbone::ilp {

class ParallelBranchAndBound {
 public:
  /// Runs the branch-and-bound search with opts.threads workers
  /// (0 = hardware concurrency, 1 = inline serial specialization).
  [[nodiscard]] MipResult solve(const LinearProgram& lp,
                                const MipOptions& opts = {}) const;
};

}  // namespace wishbone::ilp
