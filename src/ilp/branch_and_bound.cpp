#include "ilp/branch_and_bound.hpp"

#include "ilp/parallel_bnb.hpp"

namespace wishbone::ilp {

// There is exactly one tree-search implementation: the worker/pool
// engine in parallel_bnb.cpp. The classic serial solve is its N = 1
// specialization (one shard, one private SimplexState, run inline on
// the calling thread), so the serial and parallel paths can never
// drift apart semantically.
MipResult BranchAndBound::solve(const LinearProgram& lp,
                                const MipOptions& opts) const {
  return ParallelBranchAndBound().solve(lp, opts);
}

}  // namespace wishbone::ilp
