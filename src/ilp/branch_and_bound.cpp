#include "ilp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "util/assert.hpp"
#include "util/stopwatch.hpp"

namespace wishbone::ilp {

namespace {

/// One bound change: variable `var` restricted to [lo, up].
struct BoundDelta {
  int var;
  double lo;
  double up;
};

/// One link in a node's chain of bound changes back to the root: the
/// branching delta plus any reduced-cost fixings discovered alongside
/// it. Ancestry is shared (shared_ptr spine), so a node costs one link
/// instead of two n-sized bound vectors.
struct DeltaLink {
  std::shared_ptr<const DeltaLink> parent;
  std::vector<BoundDelta> deltas;
};

struct Node {
  std::shared_ptr<const DeltaLink> chain;  ///< null = root bounds
  double parent_bound = -kInf;  ///< LP bound of the parent (for pruning)
  std::size_t depth = 0;
};

struct NodeOrder {
  // Best-bound-first: smallest parent bound first; deeper first on ties
  // so the search dives toward incumbents.
  bool operator()(const Node& a, const Node& b) const {
    if (a.parent_bound != b.parent_bound) {
      return a.parent_bound > b.parent_bound;
    }
    return a.depth < b.depth;
  }
};

/// Index of the most fractional integer variable, or -1 if integral.
int pick_branch_var(const LinearProgram& lp, const std::vector<double>& x,
                    double tol) {
  int best = -1;
  double best_dist = tol;
  for (int v = 0; v < lp.num_variables(); ++v) {
    if (!lp.is_integer(v)) continue;
    const double frac = x[v] - std::floor(x[v]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = v;
    }
  }
  return best;
}

}  // namespace

MipResult BranchAndBound::solve(const LinearProgram& lp,
                                const MipOptions& opts) const {
  util::Stopwatch clock;
  MipResult res;

  const int n = lp.num_variables();
  std::vector<double> root_lo(n), root_hi(n);
  for (int v = 0; v < n; ++v) {
    root_lo[v] = lp.lower(v);
    root_hi[v] = lp.upper(v);
  }

  // The one simplex state shared by every node LP. Bound deltas are
  // replayed onto it per node; in warm mode each solve re-enters from
  // the basis the previous node left behind.
  SimplexState state(lp, opts.lp);
  if (opts.warm_basis && !opts.warm_basis->empty()) {
    res.warm_basis_loaded = state.load_basis(*opts.warm_basis);
  }

  double incumbent_obj = kInf;
  if (opts.warm_start) {
    WB_REQUIRE(static_cast<int>(opts.warm_start->size()) == n,
               "warm start has wrong dimension");
    if (lp.max_violation(*opts.warm_start) <= opts.int_tol) {
      res.x = *opts.warm_start;
      res.has_incumbent = true;
      incumbent_obj = lp.objective_value(res.x);
      res.objective = incumbent_obj;
      res.incumbents.push_back({clock.elapsed_seconds(), incumbent_obj, 0});
      res.time_to_first_incumbent = clock.elapsed_seconds();
      res.time_to_best_incumbent = clock.elapsed_seconds();
    }
  }

  // Open set: priority queue (best-first) or vector used as stack (DFS).
  std::priority_queue<Node, std::vector<Node>, NodeOrder> best_first;
  std::vector<Node> stack;
  auto push = [&](Node nd) {
    if (opts.depth_first) stack.push_back(std::move(nd));
    else best_first.push(std::move(nd));
  };
  auto empty = [&] {
    return opts.depth_first ? stack.empty() : best_first.empty();
  };
  auto pop = [&] {
    if (opts.depth_first) {
      Node nd = std::move(stack.back());
      stack.pop_back();
      return nd;
    }
    // Move out of the queue's top slot: pop() destroys it anyway, and a
    // Node carries a shared_ptr chain we'd otherwise copy-then-free.
    Node nd = std::move(const_cast<Node&>(best_first.top()));
    best_first.pop();
    return nd;
  };
  auto open_best_bound = [&]() -> double {
    if (opts.depth_first) {
      double b = kInf;
      for (const Node& nd : stack) b = std::min(b, nd.parent_bound);
      return b;
    }
    return best_first.empty() ? kInf : best_first.top().parent_bound;
  };

  // Bound deltas currently applied to `state` on top of the root
  // bounds. Node switches reset exactly these variables and replay the
  // incoming node's chain root-to-leaf (later links only tighten, so
  // replay order makes the leaf's bounds win).
  std::vector<int> applied_vars;
  std::vector<const DeltaLink*> link_scratch;
  auto apply_node = [&](const Node& nd) {
    for (int v : applied_vars) state.set_bounds(v, root_lo[v], root_hi[v]);
    applied_vars.clear();
    link_scratch.clear();
    for (const DeltaLink* l = nd.chain.get(); l != nullptr;
         l = l->parent.get()) {
      link_scratch.push_back(l);
    }
    for (auto it = link_scratch.rbegin(); it != link_scratch.rend(); ++it) {
      for (const BoundDelta& d : (*it)->deltas) {
        state.set_bounds(d.var, d.lo, d.up);
        applied_vars.push_back(d.var);
      }
    }
  };

  push(Node{nullptr, -kInf, 0});

  bool hit_limit = false;
  while (!empty()) {
    if (clock.elapsed_seconds() > opts.time_limit_s ||
        res.nodes_explored >= opts.max_nodes) {
      hit_limit = true;
      break;
    }
    Node nd = pop();
    // Prune against the incumbent before paying for the LP.
    const double prune_margin =
        std::max(opts.gap_abs, opts.gap_rel * std::fabs(incumbent_obj));
    if (nd.parent_bound >= incumbent_obj - prune_margin) continue;

    apply_node(nd);
    if (!opts.warm_lp) state.reset();  // seed behavior: cold per node
    const LpSolution rel = state.solve();
    res.lp_iterations += rel.iterations;
    ++res.nodes_explored;

    if (rel.status == SolveStatus::kInfeasible) continue;
    if (rel.status != SolveStatus::kOptimal) {
      hit_limit = true;  // numerical failure in a node LP
      break;
    }

    // Primal rounding heuristic on shallow nodes.
    if (opts.rounding_hook && nd.depth <= opts.rounding_depth) {
      if (auto cand = opts.rounding_hook(rel.x)) {
        if (static_cast<int>(cand->size()) == n &&
            lp.max_violation(*cand) <= opts.int_tol) {
          const double obj = lp.objective_value(*cand);
          if (obj < incumbent_obj - opts.gap_abs) {
            incumbent_obj = obj;
            res.x = std::move(*cand);
            res.has_incumbent = true;
            res.objective = obj;
            const double now = clock.elapsed_seconds();
            if (res.time_to_first_incumbent < 0) {
              res.time_to_first_incumbent = now;
            }
            res.time_to_best_incumbent = now;
            res.incumbents.push_back({now, obj, res.nodes_explored});
          }
        }
      }
    }

    // (Re)compute the margin: the hook may have tightened the incumbent.
    const double node_margin =
        std::max(opts.gap_abs, opts.gap_rel * std::fabs(incumbent_obj));
    if (rel.objective >= incumbent_obj - node_margin) continue;

    const int branch = pick_branch_var(lp, rel.x, opts.int_tol);
    if (branch < 0) {
      // Integral: new incumbent.
      std::vector<double> xi = rel.x;
      for (int v = 0; v < n; ++v) {
        if (lp.is_integer(v)) xi[v] = std::round(xi[v]);
      }
      const double obj = lp.objective_value(xi);
      if (obj < incumbent_obj - opts.gap_abs) {
        incumbent_obj = obj;
        res.x = std::move(xi);
        res.has_incumbent = true;
        res.objective = obj;
        const double now = clock.elapsed_seconds();
        if (res.time_to_first_incumbent < 0) {
          res.time_to_first_incumbent = now;
        }
        res.time_to_best_incumbent = now;
        res.incumbents.push_back({now, obj, res.nodes_explored});
      }
      continue;
    }

    // Reduced-cost fixing (both children inherit these): a nonbasic
    // integer variable resting on a bound whose reduced cost alone
    // lifts this node's LP bound past the incumbent cutoff can never
    // move in an *improving* subtree solution — pin it. Only integral
    // bounds qualify (the next integer point is then a full unit away).
    std::vector<BoundDelta> fixings;
    if (opts.reduced_cost_fixing && res.has_incumbent) {
      const double cutoff = incumbent_obj - node_margin;
      const std::vector<double>& rc = state.reduced_costs();
      for (int v = 0; v < n; ++v) {
        if (!lp.is_integer(v)) continue;
        const double lo = state.lower(v);
        const double up = state.upper(v);
        if (lo == up || up - lo < 1.0 - opts.int_tol) continue;
        if (std::floor(lo) != lo || std::floor(up) != up) continue;
        if (rc[v] > 0.0 && rel.x[v] <= lo + opts.int_tol &&
            rel.objective + rc[v] >= cutoff) {
          fixings.push_back({v, lo, lo});
        } else if (rc[v] < 0.0 && rel.x[v] >= up - opts.int_tol &&
                   rel.objective - rc[v] >= cutoff) {
          fixings.push_back({v, up, up});
        }
      }
      res.vars_fixed_by_reduced_cost += fixings.size();
    }

    // Branch: floor side and ceil side, as deltas on this node's chain.
    const double xb = rel.x[branch];
    auto extend = [&](double lo, double up) {
      auto link = std::make_shared<DeltaLink>();
      link->parent = nd.chain;
      link->deltas = fixings;
      link->deltas.push_back({branch, lo, up});
      return link;
    };
    Node down{extend(state.lower(branch), std::floor(xb)), rel.objective,
              nd.depth + 1};
    Node up{extend(std::ceil(xb), state.upper(branch)), rel.objective,
            nd.depth + 1};
    if (opts.depth_first) {
      // Dive toward the side nearest the LP value.
      if (xb - std::floor(xb) > 0.5) {
        push(std::move(down));
        push(std::move(up));
      } else {
        push(std::move(up));
        push(std::move(down));
      }
    } else {
      push(std::move(down));
      push(std::move(up));
    }
  }

  res.time_total = clock.elapsed_seconds();
  res.final_basis = state.extract_basis();
  res.basis_engine = state.engine_kind();
  res.basis_refactorizations = state.basis_stats().refactorizations;
  res.eta_updates = state.basis_stats().eta_updates;
  res.eta_len_peak = state.basis_stats().eta_len_peak;
  // The proven lower bound is the least bound among unexplored nodes;
  // with the tree exhausted it is the incumbent itself.
  const double open_bound = open_best_bound();
  res.best_bound = std::isfinite(open_bound)
                       ? open_bound
                       : (res.has_incumbent ? incumbent_obj : kInf);
  if (hit_limit) {
    res.status = SolveStatus::kIterationLimit;
  } else if (!res.has_incumbent) {
    res.status = SolveStatus::kInfeasible;
  } else {
    res.status = SolveStatus::kOptimal;
    res.best_bound = res.objective;
  }
  return res;
}

}  // namespace wishbone::ilp
