// Pluggable pricing rules for the primal/dual simplex core.
//
// `SimplexState` owns one `PricingRule` and consults it in two places:
//
//  - the *primal* pricing loop asks `score(j, d)` for every eligible
//    nonbasic column (smaller is better; the argmin enters), and
//  - the *dual* row-selection loop asks `row_score(r, infeas)` for
//    every bound-violating basic row (larger is better; the argmax
//    leaves).
//
// The rule never touches the basis engine or the constraint matrix —
// whenever a weight update needs transformed vectors (the pivot row
// rho = B^-T e_r, its FTRAN image tau = B^-1 rho), the simplex loop
// computes them and hands them in. `needs_pivot_row()` /
// `needs_dual_tau()` let the loop skip those solves for rules that do
// not want them, so the Dantzig default costs exactly what the
// pre-refactor hardwired loop did.
//
// Weight lifecycle: weights start at their reference value (1.0) on
// construction and on every `reset_weights()` — SimplexState calls that
// on cold resets and on every refactorization (the *approximate* reset;
// with `SimplexOptions::exact_weight_reset` the state follows up with
// `set_row_weight` per row, recomputing the true steepest-edge norms
// ||B^-T e_i||^2 at m extra BTRAN-unit solves per refactorization).
//
// Three rules ship:
//
//   kDantzig  score = -|d|, row_score = infeasibility. Stateless; the
//             tested PR 1 reference — the default path is bit-identical
//             to the pre-refactor solver.
//   kDevex    primal devex reference weights gamma_j over the columns
//             (score = -d^2/gamma_j) and dual devex weights beta_r over
//             the rows (row_score = infeas^2/beta_r), both maintained
//             by the cheap max-form update (Forrest & Goldfarb's
//             approximate steepest edge).
//   kDse      dual steepest edge proper: beta_r tracks ||B^-T e_r||^2
//             exactly via the Forrest-Goldfarb update (needs tau).
//             Primal side prices Dantzig — DSE is a *row* norm and has
//             no column analogue here, so pivot counts attribute to
//             dantzig on primal pivots and dse on dual pivots.
#pragma once

#include <memory>
#include <utility>
#include <vector>

namespace wishbone::ilp {

enum class PricingKind {
  kDantzig,  ///< most-negative reduced cost / most-violated row
  kDevex,    ///< approximate steepest edge, primal + dual weights
  kDse,      ///< exact dual steepest edge rows, Dantzig primal
};

[[nodiscard]] const char* pricing_name(PricingKind kind);

class PricingRule {
 public:
  virtual ~PricingRule() = default;

  [[nodiscard]] virtual PricingKind kind() const = 0;

  /// Restores every weight to its reference value (1.0). Called on cold
  /// resets and refactorizations; a no-op for stateless rules.
  virtual void reset_weights() {}

  /// Primal entering score for eligible column j with reduced cost d;
  /// SMALLER is better.
  [[nodiscard]] virtual double score(int j, double d) const = 0;

  /// Scores must be strictly below this to be picked. Dantzig folds the
  /// |d| > eps eligibility threshold into the floor (-eps); weighted
  /// rules use 0 — their scores are not commensurable with eps, and
  /// eligibility was already decided on the raw reduced cost.
  [[nodiscard]] virtual double score_floor() const { return 0.0; }

  /// Dual leaving-row score for basis row r whose variable violates a
  /// bound by `infeas` > 0; LARGER is better.
  [[nodiscard]] virtual double row_score(int r, double infeas) const = 0;

  /// True when primal pivots must hand `primal_update` the pivot row
  /// restricted to the candidate list (devex weight maintenance).
  [[nodiscard]] virtual bool needs_pivot_row() const { return false; }

  /// True when dual pivots must hand `dual_update` tau = B^-1 rho_r
  /// (the exact steepest-edge update).
  [[nodiscard]] virtual bool needs_dual_tau() const { return false; }

  /// Primal pivot notification: column `enter` replaced `leaving` with
  /// pivot element alpha_q; `alphas` holds (j, rho . A_j) over the
  /// still-nonbasic candidate columns (empty unless needs_pivot_row()).
  virtual void primal_update(
      int enter, int leaving, double alpha_q,
      const std::vector<std::pair<int, double>>& alphas) {
    (void)enter;
    (void)leaving;
    (void)alpha_q;
    (void)alphas;
  }

  /// Dual pivot notification: basis row r swapped in column `enter`
  /// with pivot alpha_q = w[r]; `w` is the entering column's FTRAN
  /// image, `tau` = B^-1 rho_r when needs_dual_tau() (else empty).
  virtual void dual_update(int r, int enter, double alpha_q,
                           const std::vector<double>& w,
                           const std::vector<double>& tau) {
    (void)r;
    (void)enter;
    (void)alpha_q;
    (void)w;
    (void)tau;
  }

  /// Exact-reset path: install a freshly recomputed row weight.
  virtual void set_row_weight(int r, double weight) {
    (void)r;
    (void)weight;
  }

  /// The rule actually scoring each loop — kDse prices its primal loop
  /// with Dantzig. Per-rule pivot telemetry attributes here.
  [[nodiscard]] virtual PricingKind primal_rule() const { return kind(); }
  [[nodiscard]] virtual PricingKind dual_rule() const { return kind(); }
};

/// Creates the rule for an (n_total columns, m rows) working form; eps
/// is the simplex reduced-cost tolerance (Dantzig's score floor).
[[nodiscard]] std::unique_ptr<PricingRule> make_pricing_rule(
    PricingKind kind, int n_total, int m, double eps);

}  // namespace wishbone::ilp
