#include "ilp/basis_lu.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/assert.hpp"

namespace wishbone::ilp {

BasisEngineKind resolve_engine(BasisEngineKind kind, int m) {
  if (kind != BasisEngineKind::kAuto) return kind;
  return m < kAutoDenseCutoff ? BasisEngineKind::kDense
                              : BasisEngineKind::kLu;
}

const char* engine_name(BasisEngineKind kind) {
  switch (kind) {
    case BasisEngineKind::kAuto: return "auto";
    case BasisEngineKind::kDense: return "dense";
    case BasisEngineKind::kLu: return "lu";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------- dense

/// Explicit dense inverse maintained by Gauss-Jordan elimination and
/// elementary row updates — the PR 1 solver core, kept verbatim as the
/// reference implementation the LU engine is differentially tested
/// against.
class DenseBasisEngine final : public BasisEngine {
 public:
  DenseBasisEngine(int m, const BasisEngineOptions& opts)
      : m_(m), opts_(opts) {
    set_identity();
  }

  [[nodiscard]] BasisEngineKind kind() const override {
    return BasisEngineKind::kDense;
  }

  void set_identity() override {
    binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) at(i, i) = 1.0;
  }

  [[nodiscard]] bool factorize(const std::vector<SparseColumn>& cols,
                               const std::vector<int>& basic) override {
    // binv_ = B^-1 by Gauss-Jordan with partial pivoting, where column
    // i of B is the constraint column of basic[i].
    std::vector<double>& B = b_scratch_;
    B.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      for (const auto& [row, coeff] : cols[basic[i]]) {
        B[static_cast<std::size_t>(row) * m_ + i] = coeff;
      }
    }
    set_identity();
    for (int col = 0; col < m_; ++col) {
      int piv = -1;
      double best = opts_.pivot_eps;
      for (int r = col; r < m_; ++r) {
        const double a = std::fabs(B[static_cast<std::size_t>(r) * m_ + col]);
        if (a > best) {
          best = a;
          piv = r;
        }
      }
      if (piv < 0) return false;  // singular basis
      if (piv != col) {
        for (int c = 0; c < m_; ++c) {
          std::swap(B[static_cast<std::size_t>(piv) * m_ + c],
                    B[static_cast<std::size_t>(col) * m_ + c]);
          std::swap(at(piv, c), at(col, c));
        }
      }
      const double d = B[static_cast<std::size_t>(col) * m_ + col];
      for (int c = 0; c < m_; ++c) {
        B[static_cast<std::size_t>(col) * m_ + c] /= d;
        at(col, c) /= d;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double f = B[static_cast<std::size_t>(r) * m_ + col];
        if (f == 0.0) continue;
        for (int c = 0; c < m_; ++c) {
          B[static_cast<std::size_t>(r) * m_ + c] -=
              f * B[static_cast<std::size_t>(col) * m_ + c];
          at(r, c) -= f * at(col, c);
        }
      }
    }
    ++stats_.refactorizations;
    return true;
  }

  void ftran(const SparseColumn& a, std::vector<double>& out) const override {
    out.assign(m_, 0.0);
    for (const auto& [row, coeff] : a) {
      if (coeff == 0.0) continue;
      for (int i = 0; i < m_; ++i) out[i] += at(i, row) * coeff;
    }
  }

  void ftran_dense(std::vector<double>& x) const override {
    std::vector<double>& tmp = scratch_;
    tmp.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      double v = 0.0;
      for (int k = 0; k < m_; ++k) v += at(i, k) * x[k];
      tmp[i] = v;
    }
    x = tmp;
  }

  void btran(std::vector<double>& y) const override {
    // y_out^T = y_in^T * Binv; the input (basic costs) is usually
    // sparse, so accumulate row-wise and skip zero rows.
    std::vector<double>& tmp = scratch_;
    tmp.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      const double cb = y[i];
      if (cb == 0.0) continue;
      for (int k = 0; k < m_; ++k) tmp[k] += cb * at(i, k);
    }
    y = tmp;
  }

  void btran_unit(int r, std::vector<double>& out) const override {
    // e_r^T * Binv is literally row r of the explicit inverse.
    out.resize(m_);
    for (int k = 0; k < m_; ++k) out[k] = at(r, k);
  }

  [[nodiscard]] bool update(int leave_row,
                            const std::vector<double>& w) override {
    // Elementary row update: eliminate the entering column from all
    // other rows of the inverse.
    const double piv = w[leave_row];
    WB_ASSERT_MSG(std::fabs(piv) > opts_.pivot_eps, "degenerate pivot");
    for (int c = 0; c < m_; ++c) at(leave_row, c) /= piv;
    for (int k = 0; k < m_; ++k) {
      if (k == leave_row || std::fabs(w[k]) < 1e-14) continue;
      const double f = w[k];
      for (int c = 0; c < m_; ++c) at(k, c) -= f * at(leave_row, c);
    }
    return true;
  }

 private:
  double& at(int r, int c) {
    return binv_[static_cast<std::size_t>(r) * m_ + c];
  }
  [[nodiscard]] double at(int r, int c) const {
    return binv_[static_cast<std::size_t>(r) * m_ + c];
  }

  const int m_;
  const BasisEngineOptions opts_;
  std::vector<double> binv_;
  std::vector<double> b_scratch_;
  mutable std::vector<double> scratch_;
};

// ------------------------------------------------------------------- LU

/// Sparse LU with Markowitz pivoting plus a product-form eta file.
///
/// factorize() runs Gaussian elimination on the sparse basis matrix,
/// choosing each pivot by the Markowitz merit (r_i - 1)(c_j - 1) among
/// entries passing the threshold test |a_ij| >= tau * max|row i|. The
/// result is stored as the row/column pivot orders p/q, the multiplier
/// sets L_k, and the upper-triangular rows U_k (original indices, so no
/// explicit permutation matrices are needed).
///
/// Each simplex pivot appends one eta vector: with w = B^-1 a_enter,
/// the new basis is B' = B E where E is the identity with column r
/// (the leaving row) replaced by w, so B'^-1 = E^-1 B^-1 and
///
///   FTRAN  apply E^-1 after the LU solve:   t = v_r / w_r,
///          v_i -= w_i t (i != r), v_r = t
///   BTRAN  apply E^-T before the LU solve:  c_r -= (c.w - c_r) / w_r
///
/// applied chronologically (FTRAN) / reverse-chronologically (BTRAN).
/// update() declines (returns false) when the eta file is full or
/// |w_r| is too small relative to max|w| — the numerical-drift guard —
/// and the caller refactorizes from the new basis instead.
class LuBasisEngine final : public BasisEngine {
 public:
  LuBasisEngine(int m, const BasisEngineOptions& opts) : m_(m), opts_(opts) {
    p_.resize(m_);
    q_.resize(m_);
    diag_.resize(m_);
    lcols_.resize(m_);
    urows_.resize(m_);
    spa_val_.assign(m_, 0.0);
    spa_stamp_.assign(m_, 0);
    spa_from_old_.assign(m_, 0);
    set_identity();
  }

  [[nodiscard]] BasisEngineKind kind() const override {
    return BasisEngineKind::kLu;
  }

  void set_identity() override {
    for (int k = 0; k < m_; ++k) {
      p_[k] = k;
      q_[k] = k;
      diag_[k] = 1.0;
      lcols_[k].clear();
      urows_[k].clear();
    }
    etas_.clear();
    stats_.eta_len = 0;
    stats_.factor_nnz = static_cast<std::size_t>(m_);
  }

  [[nodiscard]] bool factorize(const std::vector<SparseColumn>& cols,
                               const std::vector<int>& basic) override;

  void ftran(const SparseColumn& a, std::vector<double>& out) const override {
    out.assign(m_, 0.0);
    for (const auto& [row, coeff] : a) out[row] += coeff;
    ftran_dense(out);
  }

  void ftran_dense(std::vector<double>& x) const override {
    // L pass: replay the elimination's row operations on the rhs.
    for (int k = 0; k < m_; ++k) {
      const double t = x[p_[k]];
      if (t == 0.0) continue;
      for (const auto& [i, mult] : lcols_[k]) x[i] -= mult * t;
    }
    // U pass: back-substitution in pivot order; the solution lives in
    // column (= basis-position) space.
    std::vector<double>& sol = scratch_a_;
    sol.assign(m_, 0.0);
    for (int k = m_ - 1; k >= 0; --k) {
      double t = x[p_[k]];
      for (const auto& [j, v] : urows_[k]) t -= v * sol[j];
      sol[q_[k]] = t / diag_[k];
    }
    x = sol;
    // Eta file, chronologically: v <- E^-1 v per absorbed pivot.
    for (const Eta& e : etas_) {
      const double vr = x[e.r];
      if (vr == 0.0) continue;
      const double t = vr / e.wr;
      for (const auto& [i, wi] : e.w) x[i] -= wi * t;
      x[e.r] = t;
    }
  }

  void btran(std::vector<double>& y) const override {
    // Eta file in reverse: c^T <- c^T E^-1 touches only component r.
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      double s = y[it->r] * it->wr;
      for (const auto& [i, wi] : it->w) s += y[i] * wi;
      y[it->r] -= (s - y[it->r]) / it->wr;
    }
    // U^T forward pass: residual update in column space, solution z in
    // row space.
    std::vector<double>& rz = scratch_a_;
    std::vector<double>& z = scratch_b_;
    rz = y;
    z.assign(m_, 0.0);
    for (int k = 0; k < m_; ++k) {
      const double zk = rz[q_[k]] / diag_[k];
      z[p_[k]] = zk;
      if (zk == 0.0) continue;
      for (const auto& [j, v] : urows_[k]) rz[j] -= v * zk;
    }
    // L^T pass: transposed row operations in reverse order.
    for (int k = m_ - 1; k >= 0; --k) {
      double acc = z[p_[k]];
      for (const auto& [i, mult] : lcols_[k]) acc -= mult * z[i];
      z[p_[k]] = acc;
    }
    y = z;
  }

  void btran_unit(int r, std::vector<double>& out) const override {
    out.assign(m_, 0.0);
    out[r] = 1.0;
    btran(out);
  }

  [[nodiscard]] bool update(int leave_row,
                            const std::vector<double>& w) override {
    if (etas_.size() >= opts_.max_eta) return false;  // file full
    double wmax = 0.0;
    for (double v : w) wmax = std::max(wmax, std::fabs(v));
    const double wr = w[leave_row];
    // Drift guard: a pivot tiny relative to the direction it came from
    // would amplify error through every later eta application.
    if (std::fabs(wr) <= opts_.pivot_eps ||
        std::fabs(wr) < opts_.eta_stab * wmax) {
      return false;
    }
    Eta e;
    e.r = leave_row;
    e.wr = wr;
    for (int i = 0; i < m_; ++i) {
      if (i != leave_row && std::fabs(w[i]) > opts_.eta_drop) {
        e.w.emplace_back(i, w[i]);
      }
    }
    etas_.push_back(std::move(e));
    ++stats_.eta_updates;
    stats_.eta_len = etas_.size();
    stats_.eta_len_peak = std::max(stats_.eta_len_peak, stats_.eta_len);
    return true;
  }

 private:
  struct Eta {
    int r = 0;                                ///< leaving basis row
    double wr = 1.0;                          ///< w[r] (the pivot)
    std::vector<std::pair<int, double>> w;    ///< w off-pivot nonzeros
  };

  const int m_;
  const BasisEngineOptions opts_;

  // Factorization, pivot order k = 0..m-1 (original indices; the pivot
  // orders p_/q_ replace explicit permutation matrices).
  std::vector<int> p_;       ///< p_[k] = pivot row of step k
  std::vector<int> q_;       ///< q_[k] = pivot column of step k
  std::vector<double> diag_; ///< pivot values
  std::vector<std::vector<std::pair<int, double>>> lcols_;  ///< (row, mult)
  std::vector<std::vector<std::pair<int, double>>> urows_;  ///< (col, val)

  std::vector<Eta> etas_;

  // Factorization workspace (persists across refactorizations).
  std::vector<std::vector<std::pair<int, double>>> rows_;
  std::vector<std::vector<int>> colrows_;  ///< lazy col -> row lists
  std::vector<std::vector<int>> buckets_;  ///< lazy rows-by-count lists
  std::vector<int> colcount_;
  std::vector<std::uint8_t> row_active_, col_active_;
  std::vector<double> spa_val_;
  std::vector<std::uint32_t> spa_stamp_;
  std::vector<std::uint8_t> spa_from_old_;
  std::uint32_t stamp_ = 0;
  std::vector<int> touched_;

  mutable std::vector<double> scratch_a_, scratch_b_;
};

bool LuBasisEngine::factorize(const std::vector<SparseColumn>& cols,
                              const std::vector<int>& basic) {
  // Working matrix, row-wise; column j of B is cols[basic[j]].
  rows_.assign(m_, {});
  colrows_.assign(m_, {});
  colcount_.assign(m_, 0);
  row_active_.assign(m_, 1);
  col_active_.assign(m_, 1);
  buckets_.assign(static_cast<std::size_t>(m_) + 1, {});
  for (int j = 0; j < m_; ++j) {
    for (const auto& [r, v] : cols[basic[j]]) {
      if (v == 0.0) continue;
      rows_[r].emplace_back(j, v);
      colrows_[j].push_back(r);
      ++colcount_[j];
    }
  }
  for (int i = 0; i < m_; ++i) {
    buckets_[rows_[i].size()].push_back(i);
  }

  // Rows examined per pivot before settling for the best merit seen.
  // Smallest-count rows are scanned first (Suhl-style), so the scan is
  // O(candidates * nnz) per pivot instead of a full matrix sweep.
  constexpr int kSearchRows = 8;

  for (int k = 0; k < m_; ++k) {
    // --- Markowitz pivot selection with threshold stability, over the
    // count buckets. Bucket entries are lazily validated: every row
    // rebuild pushes the row into its new bucket, so an entry is live
    // only if the row is still active with a matching count.
    std::size_t best_merit = static_cast<std::size_t>(-1);
    double best_abs = 0.0;
    int best_i = -1, best_j = -1;
    int examined = 0;
    for (int c = 1; c <= m_ && best_merit > 0; ++c) {
      std::vector<int>& bucket = buckets_[c];
      for (std::size_t s = 0; s < bucket.size();) {
        const int i = bucket[s];
        if (!row_active_[i] ||
            static_cast<int>(rows_[i].size()) != c) {  // stale entry
          bucket[s] = bucket.back();
          bucket.pop_back();
          continue;
        }
        ++s;
        double rowmax = 0.0;
        for (const auto& [j, v] : rows_[i]) {
          rowmax = std::max(rowmax, std::fabs(v));
        }
        if (rowmax <= opts_.pivot_eps) return false;  // singular row
        const double thresh =
            std::max(opts_.markowitz_tau * rowmax, opts_.pivot_eps);
        for (const auto& [j, v] : rows_[i]) {
          const double a = std::fabs(v);
          if (a < thresh) continue;
          const std::size_t merit =
              static_cast<std::size_t>(c - 1) * (colcount_[j] - 1);
          if (merit < best_merit || (merit == best_merit && a > best_abs)) {
            best_merit = merit;
            best_abs = a;
            best_i = i;
            best_j = j;
          }
        }
        if (++examined >= kSearchRows && best_i >= 0) break;
      }
      if ((examined >= kSearchRows && best_i >= 0) || best_merit == 0) break;
    }
    if (best_i < 0) return false;  // every remaining row is empty/tiny

    // --- Record the pivot; move its row into U.
    const int pi = best_i, pj = best_j;
    double apiv = 0.0;
    urows_[k].clear();
    for (const auto& [j, v] : rows_[pi]) {
      if (j == pj) apiv = v;
      else urows_[k].emplace_back(j, v);
      --colcount_[j];
    }
    p_[k] = pi;
    q_[k] = pj;
    diag_[k] = apiv;
    row_active_[pi] = 0;
    col_active_[pj] = 0;
    rows_[pi].clear();
    rows_[pi].shrink_to_fit();

    // --- Eliminate column pj from the remaining active rows.
    lcols_[k].clear();
    for (int i : colrows_[pj]) {
      if (!row_active_[i]) continue;
      double aipj = 0.0;
      for (const auto& [j, v] : rows_[i]) {
        if (j == pj) {
          aipj = v;
          break;
        }
      }
      if (aipj == 0.0) continue;  // stale colrows entry
      const double mult = aipj / apiv;
      lcols_[k].emplace_back(i, mult);

      // Sparse row update via scatter: row_i -= mult * (U row k); the
      // pj entries cancel by construction.
      ++stamp_;
      touched_.clear();
      for (const auto& [j, v] : rows_[i]) {
        if (j == pj) continue;
        spa_val_[j] = v;
        spa_stamp_[j] = stamp_;
        spa_from_old_[j] = 1;
        touched_.push_back(j);
      }
      for (const auto& [j, v] : urows_[k]) {
        if (spa_stamp_[j] == stamp_) {
          spa_val_[j] -= mult * v;
        } else {
          spa_val_[j] = -mult * v;
          spa_stamp_[j] = stamp_;
          spa_from_old_[j] = 0;
          touched_.push_back(j);
        }
      }
      auto& row = rows_[i];
      row.clear();
      for (int j : touched_) {
        const double v = spa_val_[j];
        if (std::fabs(v) > 1e-14) {
          row.emplace_back(j, v);
          if (!spa_from_old_[j]) {  // fill-in
            ++colcount_[j];
            colrows_[j].push_back(i);
          }
        } else if (spa_from_old_[j]) {  // cancelled out
          --colcount_[j];
        }
      }
      buckets_[row.size()].push_back(i);
    }
    colrows_[pj].clear();
  }

  std::size_t nnz = static_cast<std::size_t>(m_);
  for (int k = 0; k < m_; ++k) nnz += urows_[k].size() + lcols_[k].size();
  stats_.factor_nnz = nnz;
  etas_.clear();
  stats_.eta_len = 0;
  ++stats_.refactorizations;
  return true;
}

}  // namespace

std::unique_ptr<BasisEngine> make_basis_engine(BasisEngineKind kind, int m,
                                               const BasisEngineOptions& opts) {
  switch (resolve_engine(kind, m)) {
    case BasisEngineKind::kLu:
      return std::make_unique<LuBasisEngine>(m, opts);
    default:
      return std::make_unique<DenseBasisEngine>(m, opts);
  }
}

}  // namespace wishbone::ilp
