// The unified branch-and-bound engine (serial == one worker, inline).
// Concurrency design notes live in parallel_bnb.hpp; correctness
// arguments (why racy incumbent reads are conservative, why the
// best-bound aggregation never loses a node) in src/ilp/README.md.
#include "ilp/parallel_bnb.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/stopwatch.hpp"

namespace wishbone::ilp {

namespace {

/// One bound change: variable `var` restricted to [lo, up].
struct BoundDelta {
  int var;
  double lo;
  double up;
};

/// One link in a node's chain of bound changes back to the root: the
/// branching delta plus any reduced-cost fixings discovered alongside
/// it. Ancestry is shared (shared_ptr spine), so a node costs one link
/// instead of two n-sized bound vectors — and the links ship across
/// worker threads for free (immutable after construction).
struct DeltaLink {
  std::shared_ptr<const DeltaLink> parent;
  std::vector<BoundDelta> deltas;
};

struct Node {
  std::shared_ptr<const DeltaLink> chain;  ///< null = root bounds
  double parent_bound = -kInf;  ///< LP bound of the parent (for pruning)
  std::size_t depth = 0;
  /// Global creation index: the exact LIFO key in depth-first mode and
  /// the run-to-run-stable identity of a node in either mode.
  std::uint64_t seq = 0;
  /// Basis of the parent LP that spawned this node (threads > 1 only;
  /// shared by both siblings). A stealing worker reloads it instead of
  /// phase-1-repairing from whatever unrelated basis it last held.
  std::shared_ptr<const Basis> snapshot;
};

/// std-heap "less": true when `a` pops *after* `b`. Best-first orders
/// by bound, then depth (deeper first, diving toward incumbents);
/// remaining ties resolve by the heap's deterministic sift order —
/// push/pop sequences are identical run to run in serial, so serial
/// walks are bit-reproducible, and parallel runs only promise
/// objective reproducibility anyway. Depth-first is an exact LIFO on
/// the creation index (the PR 1 stack semantics).
///
/// A *total* order on (bound, depth, seq) was measured and rejected:
/// the Fig. 6 EEG instances are so degenerate that most of the tree
/// ties on (bound, depth), and every pure tie policy loses badly
/// against the heap's mixed order on the 16-point node-budget sweep —
/// oldest-first 617k LP iterations, dive-preferred-first 676k,
/// splitmix-shuffled 905k, newest-first 1.26M, vs 556k for heap-order
/// ties (which reproduces the PR 2 snapshot bit-for-bit).
struct NodeCompare {
  bool depth_first;
  bool operator()(const Node& a, const Node& b) const {
    if (depth_first) return a.seq < b.seq;
    if (a.parent_bound != b.parent_bound) {
      return a.parent_bound > b.parent_bound;
    }
    return a.depth < b.depth;
  }
};

/// Index of the most fractional integer variable, or -1 if integral.
int pick_branch_var(const LinearProgram& lp, const std::vector<double>& x,
                    double tol) {
  int best = -1;
  double best_dist = tol;
  for (int v = 0; v < lp.num_variables(); ++v) {
    if (!lp.is_integer(v)) continue;
    const double frac = x[v] - std::floor(x[v]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = v;
    }
  }
  return best;
}

/// One pool shard: a deterministic heap owned by one worker, stealable
/// by the others.
struct alignas(64) Shard {
  std::mutex mu;
  std::vector<Node> heap;
};

struct alignas(64) PaddedBound {
  std::atomic<double> v{kInf};
};

class Search {
 public:
  Search(const LinearProgram& lp, const MipOptions& opts, int num_workers)
      : lp_(lp), opts_(opts), num_workers_(num_workers),
        cmp_{opts.depth_first}, n_(lp.num_variables()) {
    // Pre-flight the inherited basis once, not once per worker: a
    // basis threaded in from a previous solve (rate-search probe,
    // partition-server cache neighbor) is only loadable when the
    // formulation kept the same shape and constraint structure. An
    // incompatible basis means a cold start, surfaced through
    // MipResult::warm_basis_rejected so callers can count stale
    // inherits instead of silently paying for N futile load attempts.
    if (opts_.warm_basis && !opts_.warm_basis->empty()) {
      warm_reject_ = opts_.warm_basis->compatibility_with(lp);
      warm_compatible_ = warm_reject_ == BasisRejectReason::kNone;
    }
    root_lo_.resize(n_);
    root_hi_.resize(n_);
    for (int v = 0; v < n_; ++v) {
      root_lo_[v] = lp.lower(v);
      root_hi_[v] = lp.upper(v);
    }
    shards_.reserve(num_workers_);
    for (int w = 0; w < num_workers_; ++w) {
      shards_.push_back(std::make_unique<Shard>());
    }
    inflight_ = std::make_unique<PaddedBound[]>(num_workers_);
    tels_.resize(num_workers_);
    exits_.resize(num_workers_);
  }

  MipResult run() {
    MipResult res;
    res.threads_used = static_cast<std::size_t>(num_workers_);

    // Span around the whole search; its context parents the per-node
    // and basis spans the workers record. Unsampled = two branches.
    obs::Span search_span =
        obs::Tracer::global().span("bnb.search", opts_.trace);
    search_ctx_ = search_span.context();

    if (opts_.warm_start) {
      WB_REQUIRE(static_cast<int>(opts_.warm_start->size()) == n_,
                 "warm start has wrong dimension");
      if (lp_.max_violation(*opts_.warm_start) <= opts_.int_tol) {
        std::vector<double> x0 = *opts_.warm_start;
        const double obj = lp_.objective_value(x0);
        try_update_incumbent(std::move(x0), obj, /*node=*/0, /*worker=*/0);
      }
    }

    // Root node seeds shard 0; idle workers steal it (or its children).
    push(/*shard=*/0, Node{nullptr, -kInf, 0, seq_.fetch_add(1), nullptr});

    if (num_workers_ == 1) {
      run_worker(0);  // serial specialization: inline, no spawn
    } else {
      std::vector<std::thread> threads;
      threads.reserve(num_workers_);
      for (int w = 0; w < num_workers_; ++w) {
        threads.emplace_back([this, w] { run_worker(w); });
      }
      for (std::thread& t : threads) t.join();
    }

    search_span.finish();

    res.time_total = clock_.elapsed_seconds();
    res.nodes_explored = nodes_explored_.load();
    for (const WorkerTelemetry& t : tels_) {
      res.lp_iterations += t.lp_iterations;
      res.vars_fixed_by_reduced_cost += t.vars_fixed_by_reduced_cost;
      res.steals += t.steals;
      res.snapshot_reloads += t.snapshot_reloads;
      res.idle_s_total += t.idle_s;
    }
    res.workers = tels_;

    res.has_incumbent = has_inc_;
    if (has_inc_) {
      res.objective = inc_obj_;
      res.x = inc_x_;
    }
    res.incumbents = std::move(records_);
    res.time_to_first_incumbent = t_first_;
    res.time_to_best_incumbent = t_best_;

    const int basis_from = has_inc_ && inc_worker_ >= 0 ? inc_worker_ : 0;
    res.final_basis = std::move(exits_[basis_from].final_basis);
    res.warm_basis_loaded = warm_loaded_;
    res.warm_basis_rejected =
        opts_.warm_basis && !opts_.warm_basis->empty() && !warm_compatible_;
    // Pre-flight rejections carry their reason; a compatible basis that
    // still failed to load (singular factorization, strict bounds-
    // revision check) reports the reason worker 0's load recorded.
    if (res.warm_basis_rejected) {
      res.warm_basis_reject_reason = warm_reject_;
    } else if (opts_.warm_basis && !opts_.warm_basis->empty() &&
               !warm_loaded_) {
      res.warm_basis_reject_reason = warm_load_reject_;
    }
    res.basis_engine = exits_[0].engine;
    for (const WorkerExit& e : exits_) {
      res.basis_refactorizations += e.refactorizations;
      res.eta_updates += e.eta_updates;
      res.eta_len_peak = std::max(res.eta_len_peak, e.eta_len_peak);
      res.dual_reentries += e.tel.dual_reentries;
      res.phase1_reentries += e.tel.phase1_reentries;
      res.phase1_fallbacks += e.tel.phase1_fallbacks;
      res.primal_pivots += e.tel.primal_pivots;
      res.dual_pivots += e.tel.dual_pivots;
      res.pivots_dantzig += e.tel.pivots_dantzig;
      res.pivots_devex += e.tel.pivots_devex;
      res.pivots_dse += e.tel.pivots_dse;
    }

    // Proven lower bound: the least bound among unexplored nodes (no
    // locks needed — workers are joined); exhausted tree = incumbent.
    double open_bound = kInf;
    for (const auto& s : shards_) {
      for (const Node& nd : s->heap) {
        open_bound = std::min(open_bound, nd.parent_bound);
      }
    }
    res.best_bound = std::isfinite(open_bound)
                         ? open_bound
                         : (has_inc_ ? inc_obj_ : kInf);
    if (hit_limit_.load()) {
      res.status = SolveStatus::kIterationLimit;
    } else if (!has_inc_) {
      res.status = SolveStatus::kInfeasible;
    } else {
      res.status = SolveStatus::kOptimal;
      res.best_bound = res.objective;
    }

    publish_metrics(res);
    return res;
  }

 private:
  /// Aggregate counters into the process-wide registry, once per solve
  /// (never per node — the search hot path stays registry-free).
  /// Instrument pointers resolve once per process.
  static void publish_metrics(const MipResult& res) {
    obs::Registry& reg = obs::Registry::global();
    static obs::Counter* const solves = reg.counter("wishbone_bnb_solves");
    static obs::Counter* const nodes = reg.counter("wishbone_bnb_nodes");
    static obs::Counter* const lp_iters =
        reg.counter("wishbone_bnb_lp_iterations");
    static obs::Counter* const steals = reg.counter("wishbone_bnb_steals");
    static obs::Counter* const reloads =
        reg.counter("wishbone_bnb_snapshot_reloads");
    static obs::Counter* const refactors =
        reg.counter("wishbone_bnb_basis_refactorizations");
    static obs::Counter* const warm_rejected =
        reg.counter("wishbone_bnb_warm_basis_rejected");
    static obs::Counter* const reentries_dual =
        reg.counter("wishbone_bnb_reentries", {{"mode", "dual"}});
    static obs::Counter* const reentries_phase1 =
        reg.counter("wishbone_bnb_reentries", {{"mode", "phase1"}});
    static obs::Counter* const fallbacks =
        reg.counter("wishbone_bnb_phase1_fallbacks");
    static obs::Counter* const pivots_dantzig =
        reg.counter("wishbone_bnb_pivots", {{"rule", "dantzig"}});
    static obs::Counter* const pivots_devex =
        reg.counter("wishbone_bnb_pivots", {{"rule", "devex"}});
    static obs::Counter* const pivots_dse =
        reg.counter("wishbone_bnb_pivots", {{"rule", "dse"}});
    solves->inc();
    nodes->inc(res.nodes_explored);
    lp_iters->inc(res.lp_iterations);
    steals->inc(res.steals);
    reloads->inc(res.snapshot_reloads);
    refactors->inc(res.basis_refactorizations);
    if (res.warm_basis_rejected) warm_rejected->inc();
    reentries_dual->inc(res.dual_reentries);
    reentries_phase1->inc(res.phase1_reentries);
    fallbacks->inc(res.phase1_fallbacks);
    pivots_dantzig->inc(res.pivots_dantzig);
    pivots_devex->inc(res.pivots_devex);
    pivots_dse->inc(res.pivots_dse);
  }

  /// Worker-private solving context: the whole point of the design is
  /// that nothing in here is ever touched by another thread.
  struct WorkerContext {
    SimplexState state;
    std::vector<int> applied_vars;
    std::vector<const DeltaLink*> link_scratch;
  };

  void notify_all_idle() {
    std::lock_guard<std::mutex> lk(idle_mu_);
    idle_cv_.notify_all();
  }

  void push(int shard, Node nd) {
    Shard& s = *shards_[shard];
    work_.fetch_add(1);
    open_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lk(s.mu);
      s.heap.push_back(std::move(nd));
      std::push_heap(s.heap.begin(), s.heap.end(), cmp_);
    }
    // The idle wakeup has no consumer in a serial solve (the inline
    // worker never waits) — skip it on the default threads=1 path.
    if (num_workers_ > 1) {
      std::lock_guard<std::mutex> lk(idle_mu_);
      idle_cv_.notify_one();
    }
  }

  std::optional<Node> try_pop(int shard, int worker) {
    Shard& s = *shards_[shard];
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.heap.empty()) return std::nullopt;
    std::pop_heap(s.heap.begin(), s.heap.end(), cmp_);
    Node nd = std::move(s.heap.back());
    s.heap.pop_back();
    open_.fetch_sub(1);
    if (num_workers_ > 1) {
      // Publish the in-flight bound under the same lock that removes
      // the node from the shard: at every instant the node is visible
      // to global_best_bound() in the shard, the slot, or both.
      inflight_[worker].v.store(nd.parent_bound);
    }
    return nd;
  }

  /// Marks the in-flight node resolved; wakes everyone when the tree is
  /// exhausted. Children (if any) were pushed before this is called, so
  /// `work_` can only reach zero when the search is truly done.
  void complete(int worker) {
    if (num_workers_ > 1) inflight_[worker].v.store(kInf);
    if (work_.fetch_sub(1) == 1 && num_workers_ > 1) notify_all_idle();
  }

  /// The clock or node budget just ran out. Open nodes can never be
  /// processed now, so their presence means a censored run — but when
  /// only *in-flight* nodes remain, the tree may still exhaust (their
  /// leaves close it) and the run is then a completed proof, exactly
  /// as the serial loop of old decided by checking emptiness before
  /// the budget. Wait for the picture to settle.
  void resolve_limit() {
    for (;;) {
      if (work_.load() == 0) {
        notify_all_idle();
        return;  // exhausted: proved, not censored
      }
      if (open_.load() > 0) {
        hit_limit_.store(true);
        stop_.store(true);
        notify_all_idle();
        return;
      }
      std::unique_lock<std::mutex> lk(idle_mu_);
      idle_cv_.wait_for(lk, std::chrono::microseconds(200));
    }
  }

  /// Global lower bound over every unresolved subtree: min over the
  /// open nodes of all shards and the in-flight slots. Takes every
  /// shard lock (in index order — pushers take one at a time, so no
  /// deadlock), which freezes node movement for the scan: a popped
  /// node publishes its slot under the lock that removes it, so it is
  /// visible in the shard, the slot, or both at every instant, and a
  /// completing worker clears its slot only *after* its children's
  /// pushes (which block on the held locks) land. A stale slot read
  /// (parent bound ≤ its children's bounds) only lowers the result —
  /// conservative. Called from the idle path only; the pruning /
  /// fixing hot paths never touch it.
  double global_best_bound() {
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (const auto& s : shards_) locks.emplace_back(s->mu);
    double b = kInf;
    for (int w = 0; w < num_workers_; ++w) {
      b = std::min(b, inflight_[w].v.load());
    }
    for (const auto& s : shards_) {
      for (const Node& nd : s->heap) b = std::min(b, nd.parent_bound);
    }
    return b;
  }

  bool try_update_incumbent(std::vector<double> x, double obj,
                            std::size_t node, int worker) {
    std::lock_guard<std::mutex> lk(inc_mu_);
    if (has_inc_ && !(obj < inc_obj_ - opts_.gap_abs)) return false;
    inc_obj_ = obj;
    incumbent_.store(obj);
    inc_x_ = std::move(x);
    has_inc_ = true;
    inc_worker_ = worker;
    const double now = clock_.elapsed_seconds();
    if (t_first_ < 0) t_first_ = now;
    t_best_ = now;
    records_.push_back({now, obj, node});
    return true;
  }

  /// Resets the bounds the worker's state carries from its previous
  /// node and replays the incoming node's delta chain root-to-leaf
  /// (later links only tighten, so replay order makes the leaf win).
  void apply_chain(WorkerContext& ctx, const Node& nd) {
    for (int v : ctx.applied_vars) {
      ctx.state.set_bounds(v, root_lo_[v], root_hi_[v]);
    }
    ctx.applied_vars.clear();
    ctx.link_scratch.clear();
    for (const DeltaLink* l = nd.chain.get(); l != nullptr;
         l = l->parent.get()) {
      ctx.link_scratch.push_back(l);
    }
    for (auto it = ctx.link_scratch.rbegin(); it != ctx.link_scratch.rend();
         ++it) {
      for (const BoundDelta& d : (*it)->deltas) {
        ctx.state.set_bounds(d.var, d.lo, d.up);
        ctx.applied_vars.push_back(d.var);
      }
    }
  }

  /// Pops the next node: own shard first, then a round-robin steal
  /// sweep. Returns nullopt when the search is over (tree exhausted,
  /// gap closed, limit hit, or another worker failed).
  std::optional<Node> acquire(int w, WorkerTelemetry& tel, bool& stolen) {
    stolen = false;
    for (;;) {
      if (stop_.load()) return std::nullopt;
      // Exhaustion outranks the limits, as in the serial loop of old:
      // a tree that empties on exactly the last budgeted node is a
      // completed proof, not a censored run.
      if (work_.load() == 0) {
        notify_all_idle();
        return std::nullopt;
      }
      if (clock_.elapsed_seconds() > opts_.time_limit_s ||
          nodes_explored_.load() >= opts_.max_nodes) {
        resolve_limit();
        return std::nullopt;
      }
      if (auto nd = try_pop(w, w)) return nd;
      for (int i = 1; i < num_workers_; ++i) {
        if (auto nd = try_pop((w + i) % num_workers_, w)) {
          stolen = true;
          ++tel.steals;
          return nd;
        }
      }
      if (work_.load() == 0) {
        notify_all_idle();
        return std::nullopt;
      }
      // Nothing stealable but nodes are in flight. If the global scan
      // proves every open subtree is already above the incumbent
      // cutoff, the proof is complete — stop the whole search instead
      // of waiting for each node to be popped and pruned one by one.
      const double inc = incumbent_.load();
      if (std::isfinite(inc)) {
        const double margin =
            std::max(opts_.gap_abs, opts_.gap_rel * std::fabs(inc));
        if (global_best_bound() >= inc - margin) {
          stop_.store(true);
          notify_all_idle();
          return std::nullopt;
        }
      }
      const double t0 = clock_.elapsed_seconds();
      {
        std::unique_lock<std::mutex> lk(idle_mu_);
        idle_cv_.wait_for(lk, std::chrono::milliseconds(1));
      }
      tel.idle_s += clock_.elapsed_seconds() - t0;
    }
  }

  void process(int w, WorkerContext& ctx, Node nd, bool stolen,
               WorkerTelemetry& tel) {
    // Prune against the incumbent before paying for the LP. A stale
    // (higher) incumbent read prunes *less* — conservative, so racy
    // lock-free reads are sound here and in the fixing pass below.
    const double inc0 = incumbent_.load();
    const double prune_margin =
        std::max(opts_.gap_abs, opts_.gap_rel * std::fabs(inc0));
    if (nd.parent_bound >= inc0 - prune_margin) {
      complete(w);
      return;
    }

    // Claim a node-budget ticket *before* the LP so the budget is
    // exact at any thread count: acquire()'s pre-pop check races with
    // siblings near the boundary, and without the ticket N workers
    // could each overshoot by one. An over-budget claim is returned —
    // ticket and node both — and the run resolves as censored (the
    // node we just gave back is open and will never be processed).
    const std::size_t node_idx = nodes_explored_.fetch_add(1) + 1;
    if (node_idx > opts_.max_nodes) {
      nodes_explored_.fetch_sub(1);
      push(w, std::move(nd));
      complete(w);
      hit_limit_.store(true);
      stop_.store(true);
      notify_all_idle();
      return;
    }

    // Per-node span under the search span. A sampled trace records
    // every node this search expands; the per-thread ring wraps, so a
    // long proof keeps only its most recent window — exactly the
    // flight-recorder use.
    obs::Span node_span =
        obs::Tracer::global().span("bnb.node", search_ctx_);

    apply_chain(ctx, nd);
    if (stolen && nd.snapshot && opts_.warm_lp) {
      // A stolen node is far from this worker's previous subtree: its
      // own basis would need a long phase-1 repair. Reload the parent
      // snapshot instead — one refactorization, then the node LP is a
      // single bound edit away. load_basis falls back to a cold basis
      // on failure, which is still correct.
      obs::Span load_span =
          obs::Tracer::global().span("basis.load", node_span.context());
      if (ctx.state.load_basis(*nd.snapshot)) ++tel.snapshot_reloads;
    }
    if (!opts_.warm_lp) ctx.state.reset();  // seed behavior: cold per node
    // Prune threshold doubles as the LP's dual cutoff: under dual
    // re-entry the node LP stops the moment its (monotone) bound rises
    // past the point where this node gets pruned anyway — LP-infeasible
    // nodes in particular are cut off long before the full
    // dual-unbounded proof. Racy incumbent read is sound: a stale value
    // is only ever higher, which weakens the cutoff.
    double lp_cutoff = kInf;
    {
      const double inc0 = incumbent_.load();
      if (std::isfinite(inc0)) {
        lp_cutoff = inc0 - std::max(opts_.gap_abs,
                                    opts_.gap_rel * std::fabs(inc0));
      }
    }
    const LpSolution rel = ctx.state.solve(lp_cutoff);
    tel.lp_iterations += rel.iterations;
    ++tel.nodes_explored;

    if (rel.status == SolveStatus::kInfeasible ||
        rel.status == SolveStatus::kCutoff) {
      complete(w);
      return;
    }
    if (rel.status != SolveStatus::kOptimal) {
      // Numerical failure in a node LP: report as a censored run.
      hit_limit_.store(true);
      stop_.store(true);
      complete(w);
      notify_all_idle();
      return;
    }

    // Primal rounding heuristic on shallow nodes (must be reentrant
    // when threads > 1 — see MipOptions::threads).
    if (opts_.rounding_hook && nd.depth <= opts_.rounding_depth) {
      if (auto cand = opts_.rounding_hook(rel.x)) {
        if (static_cast<int>(cand->size()) == n_ &&
            lp_.max_violation(*cand) <= opts_.int_tol) {
          const double obj = lp_.objective_value(*cand);
          try_update_incumbent(std::move(*cand), obj, node_idx, w);
        }
      }
    }

    // (Re)read the incumbent: the hook (or another worker) may have
    // tightened it while the LP was solving.
    const double inc1 = incumbent_.load();
    const double node_margin =
        std::max(opts_.gap_abs, opts_.gap_rel * std::fabs(inc1));
    if (rel.objective >= inc1 - node_margin) {
      complete(w);
      return;
    }

    const int branch = pick_branch_var(lp_, rel.x, opts_.int_tol);
    if (branch < 0) {
      // Integral: new incumbent.
      std::vector<double> xi = rel.x;
      for (int v = 0; v < n_; ++v) {
        if (lp_.is_integer(v)) xi[v] = std::round(xi[v]);
      }
      const double obj = lp_.objective_value(xi);
      try_update_incumbent(std::move(xi), obj, node_idx, w);
      complete(w);
      return;
    }

    // Reduced-cost fixing (both children inherit these): a nonbasic
    // integer variable resting on a bound whose reduced cost alone
    // lifts this node's LP bound past the incumbent cutoff can never
    // move in an *improving* subtree solution — pin it. Only integral
    // bounds qualify. The fixings ride the node's own delta chain, so
    // they stay subtree-local no matter which worker picks the
    // children up; the incumbent read is racy but only ever *higher*
    // than the true incumbent, which weakens the cutoff and fixes
    // fewer variables — never an unsound fix.
    std::vector<BoundDelta> fixings;
    if (opts_.reduced_cost_fixing && std::isfinite(inc1)) {
      const double cutoff = inc1 - node_margin;
      const std::vector<double>& rc = ctx.state.reduced_costs();
      for (int v = 0; v < n_; ++v) {
        if (!lp_.is_integer(v)) continue;
        const double lo = ctx.state.lower(v);
        const double up = ctx.state.upper(v);
        if (lo == up || up - lo < 1.0 - opts_.int_tol) continue;
        if (std::floor(lo) != lo || std::floor(up) != up) continue;
        if (rc[v] > 0.0 && rel.x[v] <= lo + opts_.int_tol &&
            rel.objective + rc[v] >= cutoff) {
          fixings.push_back({v, lo, lo});
        } else if (rc[v] < 0.0 && rel.x[v] >= up - opts_.int_tol &&
                   rel.objective - rc[v] >= cutoff) {
          fixings.push_back({v, up, up});
        }
      }
      tel.vars_fixed_by_reduced_cost += fixings.size();
    }

    // Branch: floor side and ceil side, as deltas on this node's chain.
    // Children go to this worker's own shard — they are one bound away
    // from the basis its state holds right now, so keeping them local
    // preserves the warm-start locality that made PR 1 fast. With more
    // than one worker, capture the parent basis once so a *stealing*
    // worker can reload it instead of repairing a stale basis.
    std::shared_ptr<const Basis> snap;
    if (num_workers_ > 1 && opts_.warm_lp) {
      snap = std::make_shared<const Basis>(ctx.state.extract_basis());
    }
    const double xb = rel.x[branch];
    auto extend = [&](double lo, double up) {
      auto link = std::make_shared<DeltaLink>();
      link->parent = nd.chain;
      link->deltas = fixings;
      link->deltas.push_back({branch, lo, up});
      return link;
    };
    Node down{extend(ctx.state.lower(branch), std::floor(xb)), rel.objective,
              nd.depth + 1, 0, snap};
    Node up{extend(std::ceil(xb), ctx.state.upper(branch)), rel.objective,
            nd.depth + 1, 0, snap};
    if (opts_.depth_first && xb - std::floor(xb) > 0.5) {
      // Dive toward the side nearest the LP value: the favored child
      // gets the larger creation index, so the LIFO order pops it first.
      down.seq = seq_.fetch_add(1);
      up.seq = seq_.fetch_add(1);
    } else {
      up.seq = seq_.fetch_add(1);
      down.seq = seq_.fetch_add(1);
    }
    push(w, std::move(down));
    push(w, std::move(up));
    complete(w);
  }

  void run_worker(int w) {
    WorkerTelemetry& tel = tels_[w];
    WorkerContext ctx{SimplexState(lp_, opts_.lp), {}, {}};
    if (warm_compatible_ && opts_.warm_basis && !opts_.warm_basis->empty()) {
      // Every worker inherits the caller's basis: any of them may end
      // up solving the root (or an early steal) and the load is one
      // refactorization against a search of many node LPs.
      obs::Span load_span =
          obs::Tracer::global().span("basis.load", search_ctx_);
      const bool ok = ctx.state.load_basis(*opts_.warm_basis);
      if (w == 0) {
        warm_loaded_ = ok;
        if (!ok) warm_load_reject_ = ctx.state.last_load_reject();
      }
    }
    for (;;) {
      bool stolen = false;
      std::optional<Node> nd = acquire(w, tel, stolen);
      if (!nd) break;
      process(w, ctx, std::move(*nd), stolen, tel);
    }
    exits_[w] = WorkerExit{ctx.state.extract_basis(),
                           ctx.state.basis_stats().refactorizations,
                           ctx.state.basis_stats().eta_updates,
                           ctx.state.basis_stats().eta_len_peak,
                           ctx.state.engine_kind(),
                           ctx.state.telemetry()};
  }

  const LinearProgram& lp_;
  const MipOptions& opts_;
  const int num_workers_;
  const NodeCompare cmp_;
  const int n_;
  util::Stopwatch clock_;

  std::vector<double> root_lo_, root_hi_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<PaddedBound[]> inflight_;

  /// Open nodes + in-flight nodes; the search is over at zero. Child
  /// pushes increment before the parent's completion decrements, so
  /// zero is unreachable while any subtree is unresolved.
  std::atomic<std::size_t> work_{0};
  /// Nodes currently sitting in a shard (work_ minus in-flight):
  /// resolve_limit() distinguishes "censored, nodes left behind" from
  /// "in-flight tail may still exhaust the tree" with it.
  std::atomic<std::size_t> open_{0};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::size_t> nodes_explored_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> hit_limit_{false};

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  /// Lock-free mirror of the incumbent objective (kInf = none) read by
  /// the pruning / fixing hot paths; the full record updates under
  /// inc_mu_ with a re-check.
  std::atomic<double> incumbent_{kInf};
  std::mutex inc_mu_;
  double inc_obj_ = kInf;
  std::vector<double> inc_x_;
  bool has_inc_ = false;
  int inc_worker_ = -1;
  double t_first_ = -1.0;
  double t_best_ = -1.0;
  std::vector<IncumbentRecord> records_;

  /// What a worker leaves behind when it exits: one slot per worker,
  /// written only by that worker, read after join().
  struct WorkerExit {
    Basis final_basis;
    std::size_t refactorizations = 0;
    std::size_t eta_updates = 0;
    std::size_t eta_len_peak = 0;
    BasisEngineKind engine = BasisEngineKind::kDense;
    SimplexTelemetry tel;
  };

  std::vector<WorkerTelemetry> tels_;
  std::vector<WorkerExit> exits_;
  bool warm_loaded_ = false;
  bool warm_compatible_ = true;
  BasisRejectReason warm_reject_ = BasisRejectReason::kNone;
  /// Worker 0's load failure reason when the pre-flight passed but the
  /// load itself did not (singular / strict bounds-revision).
  BasisRejectReason warm_load_reject_ = BasisRejectReason::kNone;
  /// Context of the bnb.search span; written in run() before workers
  /// spawn, read-only afterwards.
  obs::TraceContext search_ctx_;
};

}  // namespace

MipResult ParallelBranchAndBound::solve(const LinearProgram& lp,
                                        const MipOptions& opts) const {
  std::size_t workers = opts.threads;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  // Clamp before the int cast: a garbage thread count (e.g. a CLI
  // "-1" pushed through size_t) must degrade to a bounded worker
  // pool, not truncate arbitrarily or build a shardless Search.
  workers = std::min<std::size_t>(workers, 512);
  Search search(lp, opts, static_cast<int>(workers));
  return search.run();
}

}  // namespace wishbone::ilp
