// Deterministic fault injection for fleet-scale deployment simulation.
//
// The analytic RadioModel and StochasticChannel model *average*
// congestion behavior; real deployments additionally see bursty
// interference, node crashes and basestation maintenance windows — the
// regimes where a profile-driven partition either adapts or dies. This
// layer generates all of those faults from one (seed, config) pair:
//
//  - Gilbert-Elliott two-state burst loss (GilbertElliott,
//    BurstyChannel): a Markov chain alternating a mostly-clean "good"
//    state with lossy "bad" bursts, layered multiplicatively on top of
//    StochasticChannel's congestion draws. Mean bad-burst length is
//    1 / p_bad_to_good.
//  - Per-node crash/reboot windows: a configured fraction of the fleet
//    crashes once, at a seeded time, for a seeded duration.
//  - Link-degradation events: a node's link quality drops to a seeded
//    factor for a seeded window (foliage, a parked truck, a duty-cycle
//    bug).
//  - Basestation outage intervals: nothing is delivered fleet-wide
//    while the collection root is down.
//
// Everything is precomputed at construction from independent child
// PRNG streams (Xorshift64::fork), so queries are pure lookups and a
// schedule is fully replayable — and shareable between the static and
// adaptive arms of an A/B run — from (seed, config) alone.
// FaultConfig::hash() fingerprints the config so benchmark snapshots
// can stamp exactly which schedule produced them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/stochastic.hpp"

namespace wishbone::net {

struct GilbertElliottParams {
  double p_good_to_bad = 0.01;  ///< per-step entry into a loss burst
  double p_bad_to_good = 0.25;  ///< 1 / mean burst length
  double loss_good = 0.0;       ///< extra loss probability, good state
  double loss_bad = 0.8;        ///< loss probability inside a burst
};

/// The two-state Markov loss chain. One step per message (or per time
/// slice, the caller picks the granularity).
class GilbertElliott {
 public:
  GilbertElliott(GilbertElliottParams params, std::uint64_t seed);

  /// Advances one step; true = this message/slice is lost.
  [[nodiscard]] bool lose();

  [[nodiscard]] bool in_bad() const { return bad_; }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  [[nodiscard]] std::uint64_t bad_steps() const { return bad_steps_; }
  /// Completed good->bad transitions (number of bursts entered).
  [[nodiscard]] std::uint64_t bursts() const { return bursts_; }
  [[nodiscard]] const GilbertElliottParams& params() const { return params_; }

 private:
  GilbertElliottParams params_;
  Xorshift64 rng_;
  bool bad_ = false;
  std::uint64_t steps_ = 0;
  std::uint64_t bad_steps_ = 0;
  std::uint64_t bursts_ = 0;
};

/// StochasticChannel with Gilbert-Elliott burst loss layered on top: a
/// message must survive both the congestion draw and the burst chain.
class BurstyChannel {
 public:
  BurstyChannel(StochasticChannel channel, GilbertElliottParams ge,
                std::uint64_t seed);

  [[nodiscard]] bool try_deliver(double per_node_payload_rate);
  [[nodiscard]] std::uint64_t deliver_count(double per_node_payload_rate,
                                            std::uint64_t messages);

  [[nodiscard]] const GilbertElliott& chain() const { return ge_; }

 private:
  StochasticChannel channel_;
  GilbertElliott ge_;
};

struct CrashWindow {
  std::size_t node = 0;
  double down_s = 0.0;  ///< crash instant
  double up_s = 0.0;    ///< reboot instant
};

struct LinkDegradation {
  std::size_t node = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  double delivery_factor = 1.0;  ///< multiplies the node's link quality
};

struct OutageWindow {
  double start_s = 0.0;
  double end_s = 0.0;
};

struct FaultConfig {
  double duration_s = 300.0;

  /// Fraction of the fleet that crashes exactly once during the run.
  double crash_fraction = 0.05;
  double crash_min_down_s = 20.0;
  double crash_max_down_s = 60.0;

  /// Fraction of the fleet whose link degrades for one window.
  double degrade_fraction = 0.10;
  double degrade_min_factor = 0.3;
  double degrade_max_factor = 0.8;
  double degrade_min_s = 15.0;
  double degrade_max_s = 45.0;

  std::size_t basestation_outages = 1;
  double outage_min_s = 5.0;
  double outage_max_s = 15.0;

  GilbertElliottParams ge;

  /// Order-sensitive fingerprint of every field, for stamping benchmark
  /// output: (seed, hash) identifies a schedule exactly.
  [[nodiscard]] std::uint64_t hash() const;
};

class FaultSchedule {
 public:
  FaultSchedule(const FaultConfig& cfg, std::size_t num_nodes,
                std::uint64_t seed);

  [[nodiscard]] bool node_down(std::size_t node, double t) const;
  /// Seconds of [t0, t1) the node spends crashed.
  [[nodiscard]] double node_down_overlap(std::size_t node, double t0,
                                         double t1) const;
  /// Link-quality factor at instant t (1.0 = clean).
  [[nodiscard]] double link_factor(std::size_t node, double t) const;
  /// Time-averaged link-quality factor over [t0, t1).
  [[nodiscard]] double link_factor_overlap(std::size_t node, double t0,
                                           double t1) const;
  [[nodiscard]] bool basestation_down(double t) const;
  /// Seconds of [t0, t1) the basestation spends dark.
  [[nodiscard]] double outage_overlap(double t0, double t1) const;

  /// Fresh burst-loss chain drawn from this schedule's seed; `stream`
  /// distinguishes independent consumers (e.g. per simulation arm).
  [[nodiscard]] GilbertElliott make_burst_chain(std::uint64_t stream = 0) const;

  [[nodiscard]] const std::vector<CrashWindow>& crashes() const {
    return crashes_;
  }
  [[nodiscard]] const std::vector<LinkDegradation>& degradations() const {
    return degradations_;
  }
  [[nodiscard]] const std::vector<OutageWindow>& outages() const {
    return outages_;
  }
  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }

 private:
  FaultConfig cfg_;
  std::size_t num_nodes_;
  std::uint64_t seed_;
  std::vector<CrashWindow> crashes_;              ///< sorted by node
  std::vector<LinkDegradation> degradations_;     ///< sorted by node
  /// Per-node index into crashes_/degradations_ (at most one each), or
  /// npos. O(1) queries for the per-epoch hot loop.
  std::vector<std::size_t> crash_of_node_;
  std::vector<std::size_t> degradation_of_node_;
  std::vector<OutageWindow> outages_;             ///< sorted, disjoint
};

}  // namespace wishbone::net
