#include "net/topology.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace wishbone::net {

TreeTopology::TreeTopology(std::size_t num_nodes, std::size_t fanout)
    : num_nodes_(num_nodes) {
  WB_REQUIRE(num_nodes >= 1, "topology needs at least one node");
  WB_REQUIRE(fanout >= 2, "tree fanout must be >= 2");
  // Mean depth of a balanced `fanout`-ary collection tree.
  double total_hops = 0.0;
  std::size_t placed = 0;
  std::size_t level = 1;
  std::size_t level_capacity = fanout;
  while (placed < num_nodes) {
    const std::size_t here = std::min(level_capacity, num_nodes - placed);
    total_hops += static_cast<double>(here) * static_cast<double>(level);
    placed += here;
    level_capacity *= fanout;
    ++level;
  }
  avg_hops_ = total_hops / static_cast<double>(num_nodes);
}

double TreeTopology::aggregate_on_air(const RadioModel& radio,
                                      double per_node_payload) const {
  return radio.on_air(per_node_payload) *
         static_cast<double>(num_nodes_) * avg_hops_;
}

double TreeTopology::delivery_fraction(const RadioModel& radio,
                                       double per_node_payload) const {
  const double offered = aggregate_on_air(radio, per_node_payload);
  // Baseline (link-quality) loss compounds per hop, but congestion
  // loss is charged once: the overloaded resource is the single link
  // at the root of the routing tree (§7.3), not every hop.
  const double congested = radio.delivery_fraction(offered);
  return std::pow(radio.baseline_delivery, avg_hops_ - 1.0) * congested;
}

}  // namespace wishbone::net
