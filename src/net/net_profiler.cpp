#include "net/net_profiler.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace wishbone::net {

NetProfileResult profile_network(const RadioModel& radio,
                                 const TreeTopology& topo,
                                 double target_reception,
                                 double start_bytes_per_sec,
                                 double stop_bytes_per_sec,
                                 std::size_t steps) {
  WB_REQUIRE(target_reception > 0.0 && target_reception <= 1.0,
             "target reception must be in (0,1]");
  WB_REQUIRE(start_bytes_per_sec > 0.0 &&
                 stop_bytes_per_sec > start_bytes_per_sec,
             "bad sweep bracket");
  WB_REQUIRE(steps >= 2, "need at least two sweep steps");

  NetProfileResult res;
  const double ratio = std::pow(stop_bytes_per_sec / start_bytes_per_sec,
                                1.0 / static_cast<double>(steps - 1));
  double rate = start_bytes_per_sec;
  for (std::size_t i = 0; i < steps; ++i, rate *= ratio) {
    NetProfilePoint pt;
    pt.per_node_payload_bytes_per_sec = rate;
    pt.per_node_msgs_per_sec = radio.message_rate(rate);
    pt.reception_ratio = topo.delivery_fraction(radio, rate);
    pt.delivered_payload_bytes_per_sec = rate * pt.reception_ratio;
    res.sweep.push_back(pt);
    if (pt.reception_ratio >= target_reception &&
        rate > res.max_payload_bytes_per_sec) {
      res.max_payload_bytes_per_sec = rate;
      res.max_msgs_per_sec = pt.per_node_msgs_per_sec;
      res.reception_at_max = pt.reception_ratio;
    }
  }
  return res;
}

}  // namespace wishbone::net
