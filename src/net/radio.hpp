// Radio channel model for the deployment simulator (§7.3.1).
//
// The paper characterizes its 20-node TMote testbed as: "each node has
// a baseline packet drop rate that stays steady over a range of sending
// rates, and then at some point drops off dramatically as the network
// becomes excessively congested." This model reproduces exactly that
// shape: a flat baseline delivery ratio up to the channel's on-air
// capacity, then a sharply super-linear congestion collapse beyond it
// (delivery falls faster than capacity/load, so offering *more* data
// yields *fewer* delivered bytes — the regime §4.3 warns about).
#pragma once

#include <cstdint>

namespace wishbone::net {

struct RadioModel {
  double payload_bytes = 28.0;       ///< application payload per message
  double header_bytes = 11.0;        ///< link/network header per message
  double capacity_bytes_per_sec = 0; ///< sustainable collection capacity
  double tx_bytes_per_sec = 0;       ///< single-link raw transmit rate
  double baseline_delivery = 0.95;   ///< flat delivery below saturation
  /// Overload factor (offered/capacity) up to which CSMA degrades
  /// gracefully: delivered ~= capacity (delivery ~ 1/x). Beyond the
  /// knee the channel collapses super-linearly with exponent gamma.
  double saturation_knee = 4.0;
  double collapse_exponent = 4.0;    ///< gamma: steepness of collapse

  /// Fraction of sent messages delivered when the aggregate on-air load
  /// is `offered_bytes_per_sec` (headers included).
  [[nodiscard]] double delivery_fraction(double offered_bytes_per_sec) const;

  /// Delivered payload bytes/s at a given aggregate *payload* sending
  /// rate (headers are added internally).
  [[nodiscard]] double goodput(double payload_bytes_per_sec) const;

  /// On-air bytes/s for a payload rate (adds per-message headers).
  [[nodiscard]] double on_air(double payload_bytes_per_sec) const;

  /// Messages/s needed for a payload rate.
  [[nodiscard]] double message_rate(double payload_bytes_per_sec) const;
};

/// CC2420-class channel as used by the TMote testbed.
[[nodiscard]] RadioModel cc2420_radio();

/// 802.11-class channel for the Meraki / phone platforms (>= 10x the
/// mote bandwidth, §7.3.1).
[[nodiscard]] RadioModel wifi_radio();

}  // namespace wishbone::net
