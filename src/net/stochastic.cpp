#include "net/stochastic.hpp"

#include "util/assert.hpp"

namespace wishbone::net {

StochasticChannel::StochasticChannel(RadioModel radio, TreeTopology topo,
                                     std::uint32_t seed)
    : radio_(radio), topo_(topo),
      state_(0x9E3779B97F4A7C15ULL ^ (static_cast<std::uint64_t>(seed) + 1)) {
  WB_REQUIRE(radio_.capacity_bytes_per_sec > 0, "radio model incomplete");
}

double StochasticChannel::next_uniform() {
  // xorshift64*: small, fast, deterministic across platforms.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  const std::uint64_t z = state_ * 0x2545F4914F6CDD1DULL;
  return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
}

bool StochasticChannel::try_deliver(double per_node_payload_rate) {
  const double p = topo_.delivery_fraction(radio_, per_node_payload_rate);
  return next_uniform() < p;
}

std::uint64_t StochasticChannel::deliver_count(double per_node_payload_rate,
                                               std::uint64_t messages) {
  std::uint64_t delivered = 0;
  for (std::uint64_t i = 0; i < messages; ++i) {
    delivered += try_deliver(per_node_payload_rate) ? 1 : 0;
  }
  return delivered;
}

}  // namespace wishbone::net
