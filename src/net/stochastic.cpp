#include "net/stochastic.hpp"

#include "util/assert.hpp"

namespace wishbone::net {

StochasticChannel::StochasticChannel(RadioModel radio, TreeTopology topo,
                                     std::uint32_t seed)
    : radio_(radio), topo_(topo), rng_(seed) {
  WB_REQUIRE(radio_.capacity_bytes_per_sec > 0, "radio model incomplete");
}

bool StochasticChannel::try_deliver(double per_node_payload_rate) {
  const double p = topo_.delivery_fraction(radio_, per_node_payload_rate);
  return rng_.next_uniform() < p;
}

std::uint64_t StochasticChannel::deliver_count(double per_node_payload_rate,
                                               std::uint64_t messages) {
  std::uint64_t delivered = 0;
  for (std::uint64_t i = 0; i < messages; ++i) {
    delivered += try_deliver(per_node_payload_rate) ? 1 : 0;
  }
  return delivered;
}

}  // namespace wishbone::net
