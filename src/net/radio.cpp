#include "net/radio.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace wishbone::net {

double RadioModel::delivery_fraction(double offered_bytes_per_sec) const {
  WB_ASSERT(capacity_bytes_per_sec > 0);
  if (offered_bytes_per_sec <= 0.0) return baseline_delivery;
  const double x = offered_bytes_per_sec / capacity_bytes_per_sec;
  if (x <= 1.0) return baseline_delivery;
  // Graceful saturation: aggregate delivered bytes plateau at the
  // channel capacity (delivery ~ 1/x) while CSMA still degrades
  // politely...
  if (x <= saturation_knee) return baseline_delivery / x;
  // ...then congestion collapse: super-linear decay in the overload
  // factor, continuous at the knee.
  return baseline_delivery *
         std::pow(saturation_knee, collapse_exponent - 1.0) /
         std::pow(x, collapse_exponent);
}

double RadioModel::on_air(double payload_bytes_per_sec) const {
  if (payload_bytes_per_sec <= 0.0) return 0.0;
  WB_ASSERT(payload_bytes > 0);
  const double msgs = std::ceil(payload_bytes_per_sec / payload_bytes);
  return payload_bytes_per_sec + msgs * header_bytes;
}

double RadioModel::message_rate(double payload_bytes_per_sec) const {
  if (payload_bytes_per_sec <= 0.0) return 0.0;
  return std::ceil(payload_bytes_per_sec / payload_bytes);
}

double RadioModel::goodput(double payload_bytes_per_sec) const {
  return payload_bytes_per_sec *
         delivery_fraction(on_air(payload_bytes_per_sec));
}

RadioModel cc2420_radio() {
  RadioModel r;
  r.payload_bytes = 28.0;
  r.header_bytes = 11.0;
  // ~250 kbit/s PHY shrinks to a few kB/s of sustained collection-layer
  // capacity after CSMA, acks and forwarding overhead.
  r.capacity_bytes_per_sec = 1700.0;
  // A lone sender can push ~12 kB/s through its own link before CSMA
  // and the stack throttle it; the collection layer sustains far less.
  r.tx_bytes_per_sec = 12'000.0;
  r.baseline_delivery = 0.95;
  // §7.3.1: delivery holds its baseline over a range of rates, then
  // "drops off dramatically" — at the raw-data cut the testbed
  // delivered essentially nothing (Fig. 9).
  r.saturation_knee = 3.0;
  r.collapse_exponent = 5.0;
  return r;
}

RadioModel wifi_radio() {
  RadioModel r;
  r.payload_bytes = 1448.0;
  r.header_bytes = 52.0;
  r.capacity_bytes_per_sec = 150'000.0;
  r.tx_bytes_per_sec = 600'000.0;
  r.baseline_delivery = 0.98;
  r.saturation_knee = 2.0;
  r.collapse_exponent = 3.0;
  return r;
}

}  // namespace wishbone::net
