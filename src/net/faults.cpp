#include "net/faults.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/assert.hpp"

namespace wishbone::net {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Seconds of [a0, a1) ∩ [b0, b1).
double overlap_s(double a0, double a1, double b0, double b1) {
  const double lo = std::max(a0, b0);
  const double hi = std::min(a1, b1);
  return hi > lo ? hi - lo : 0.0;
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return mix64(h, bits);
}

/// Deterministic choice of k distinct nodes out of n (partial
/// Fisher-Yates over an index array).
std::vector<std::size_t> pick_nodes(std::size_t n, std::size_t k,
                                    Xorshift64& rng) {
  std::vector<std::size_t> ix(n);
  for (std::size_t i = 0; i < n; ++i) ix[i] = i;
  k = std::min(k, n);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.next() % (n - i));
    std::swap(ix[i], ix[j]);
  }
  ix.resize(k);
  std::sort(ix.begin(), ix.end());
  return ix;
}

}  // namespace

// ------------------------------------------------------ GilbertElliott

GilbertElliott::GilbertElliott(GilbertElliottParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  WB_REQUIRE(params_.p_good_to_bad >= 0.0 && params_.p_good_to_bad <= 1.0 &&
                 params_.p_bad_to_good > 0.0 && params_.p_bad_to_good <= 1.0,
             "Gilbert-Elliott transition probabilities out of range");
  WB_REQUIRE(params_.loss_good >= 0.0 && params_.loss_good <= 1.0 &&
                 params_.loss_bad >= 0.0 && params_.loss_bad <= 1.0,
             "Gilbert-Elliott loss probabilities out of range");
}

bool GilbertElliott::lose() {
  // Transition first, then draw the loss from the *new* state, so a
  // burst's first message already suffers burst loss.
  if (bad_) {
    if (rng_.next_uniform() < params_.p_bad_to_good) bad_ = false;
  } else if (rng_.next_uniform() < params_.p_good_to_bad) {
    bad_ = true;
    ++bursts_;
  }
  ++steps_;
  if (bad_) ++bad_steps_;
  const double loss = bad_ ? params_.loss_bad : params_.loss_good;
  return rng_.next_uniform() < loss;
}

// ------------------------------------------------------- BurstyChannel

BurstyChannel::BurstyChannel(StochasticChannel channel,
                             GilbertElliottParams ge, std::uint64_t seed)
    : channel_(std::move(channel)), ge_(ge, seed) {}

bool BurstyChannel::try_deliver(double per_node_payload_rate) {
  // Evaluate both draws unconditionally: the burst chain must advance
  // once per message regardless of the congestion outcome, or the
  // burst process would depend on the offered load.
  const bool congestion_ok = channel_.try_deliver(per_node_payload_rate);
  const bool burst_lost = ge_.lose();
  return congestion_ok && !burst_lost;
}

std::uint64_t BurstyChannel::deliver_count(double per_node_payload_rate,
                                           std::uint64_t messages) {
  std::uint64_t delivered = 0;
  for (std::uint64_t i = 0; i < messages; ++i) {
    delivered += try_deliver(per_node_payload_rate) ? 1 : 0;
  }
  return delivered;
}

// --------------------------------------------------------- FaultConfig

std::uint64_t FaultConfig::hash() const {
  std::uint64_t h = 0xFA01DULL;
  h = mix_double(h, duration_s);
  h = mix_double(h, crash_fraction);
  h = mix_double(h, crash_min_down_s);
  h = mix_double(h, crash_max_down_s);
  h = mix_double(h, degrade_fraction);
  h = mix_double(h, degrade_min_factor);
  h = mix_double(h, degrade_max_factor);
  h = mix_double(h, degrade_min_s);
  h = mix_double(h, degrade_max_s);
  h = mix64(h, basestation_outages);
  h = mix_double(h, outage_min_s);
  h = mix_double(h, outage_max_s);
  h = mix_double(h, ge.p_good_to_bad);
  h = mix_double(h, ge.p_bad_to_good);
  h = mix_double(h, ge.loss_good);
  h = mix_double(h, ge.loss_bad);
  return h == 0 ? 1 : h;
}

// ------------------------------------------------------- FaultSchedule

FaultSchedule::FaultSchedule(const FaultConfig& cfg, std::size_t num_nodes,
                             std::uint64_t seed)
    : cfg_(cfg), num_nodes_(num_nodes), seed_(seed) {
  WB_REQUIRE(cfg.duration_s > 0.0, "fault schedule needs a positive duration");
  WB_REQUIRE(cfg.crash_fraction >= 0.0 && cfg.crash_fraction <= 1.0 &&
                 cfg.degrade_fraction >= 0.0 && cfg.degrade_fraction <= 1.0,
             "fault fractions out of range");
  WB_REQUIRE(cfg.crash_max_down_s >= cfg.crash_min_down_s &&
                 cfg.degrade_max_s >= cfg.degrade_min_s &&
                 cfg.outage_max_s >= cfg.outage_min_s,
             "fault window bounds inverted");
  WB_REQUIRE(cfg.degrade_min_factor > 0.0 && cfg.degrade_max_factor <= 1.0 &&
                 cfg.degrade_max_factor >= cfg.degrade_min_factor,
             "degradation factors out of range");

  // Independent child streams per fault family: adding outages to a
  // config never reshuffles which nodes crash.
  Xorshift64 root(seed);
  Xorshift64 crash_rng = root.fork(1);
  Xorshift64 degrade_rng = root.fork(2);
  Xorshift64 outage_rng = root.fork(3);

  const auto num_crashes = static_cast<std::size_t>(
      cfg.crash_fraction * static_cast<double>(num_nodes) + 0.5);
  for (std::size_t node :
       pick_nodes(num_nodes, num_crashes, crash_rng)) {
    CrashWindow w;
    w.node = node;
    const double down =
        crash_rng.next_in(cfg.crash_min_down_s, cfg.crash_max_down_s);
    w.down_s = crash_rng.next_in(0.0, std::max(cfg.duration_s - down, 0.0));
    w.up_s = std::min(w.down_s + down, cfg.duration_s);
    crashes_.push_back(w);
  }

  const auto num_degraded = static_cast<std::size_t>(
      cfg.degrade_fraction * static_cast<double>(num_nodes) + 0.5);
  for (std::size_t node :
       pick_nodes(num_nodes, num_degraded, degrade_rng)) {
    LinkDegradation d;
    d.node = node;
    const double len =
        degrade_rng.next_in(cfg.degrade_min_s, cfg.degrade_max_s);
    d.start_s = degrade_rng.next_in(0.0, std::max(cfg.duration_s - len, 0.0));
    d.end_s = std::min(d.start_s + len, cfg.duration_s);
    d.delivery_factor =
        degrade_rng.next_in(cfg.degrade_min_factor, cfg.degrade_max_factor);
    degradations_.push_back(d);
  }

  // Outages are placed in disjoint slots: the run is divided into
  // `basestation_outages` equal segments with one outage seeded inside
  // each, so configured outages never merge.
  for (std::size_t i = 0; i < cfg.basestation_outages; ++i) {
    const double seg = cfg.duration_s /
                       static_cast<double>(cfg.basestation_outages);
    const double len = std::min(
        outage_rng.next_in(cfg.outage_min_s, cfg.outage_max_s), seg);
    OutageWindow w;
    w.start_s = static_cast<double>(i) * seg +
                outage_rng.next_in(0.0, seg - len);
    w.end_s = w.start_s + len;
    outages_.push_back(w);
  }
  std::sort(outages_.begin(), outages_.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.start_s < b.start_s;
            });

  crash_of_node_.assign(num_nodes, kNone);
  for (std::size_t i = 0; i < crashes_.size(); ++i) {
    crash_of_node_[crashes_[i].node] = i;
  }
  degradation_of_node_.assign(num_nodes, kNone);
  for (std::size_t i = 0; i < degradations_.size(); ++i) {
    degradation_of_node_[degradations_[i].node] = i;
  }
}

bool FaultSchedule::node_down(std::size_t node, double t) const {
  WB_ASSERT(node < num_nodes_);
  const std::size_t ix = crash_of_node_[node];
  if (ix == kNone) return false;
  const CrashWindow& w = crashes_[ix];
  return t >= w.down_s && t < w.up_s;
}

double FaultSchedule::node_down_overlap(std::size_t node, double t0,
                                        double t1) const {
  WB_ASSERT(node < num_nodes_);
  const std::size_t ix = crash_of_node_[node];
  if (ix == kNone) return 0.0;
  const CrashWindow& w = crashes_[ix];
  return overlap_s(t0, t1, w.down_s, w.up_s);
}

double FaultSchedule::link_factor(std::size_t node, double t) const {
  WB_ASSERT(node < num_nodes_);
  const std::size_t ix = degradation_of_node_[node];
  if (ix == kNone) return 1.0;
  const LinkDegradation& d = degradations_[ix];
  return (t >= d.start_s && t < d.end_s) ? d.delivery_factor : 1.0;
}

double FaultSchedule::link_factor_overlap(std::size_t node, double t0,
                                          double t1) const {
  WB_ASSERT(node < num_nodes_);
  if (t1 <= t0) return 1.0;
  const std::size_t ix = degradation_of_node_[node];
  if (ix == kNone) return 1.0;
  const LinkDegradation& d = degradations_[ix];
  const double degraded = overlap_s(t0, t1, d.start_s, d.end_s);
  return (degraded * d.delivery_factor + (t1 - t0 - degraded)) / (t1 - t0);
}

bool FaultSchedule::basestation_down(double t) const {
  for (const OutageWindow& w : outages_) {
    if (t >= w.start_s && t < w.end_s) return true;
    if (w.start_s > t) break;
  }
  return false;
}

double FaultSchedule::outage_overlap(double t0, double t1) const {
  double s = 0.0;
  for (const OutageWindow& w : outages_) {
    s += overlap_s(t0, t1, w.start_s, w.end_s);
  }
  return s;
}

GilbertElliott FaultSchedule::make_burst_chain(std::uint64_t stream) const {
  Xorshift64 root(seed_);
  return GilbertElliott(cfg_.ge, root.fork(100 + stream).next());
}

}  // namespace wishbone::net
