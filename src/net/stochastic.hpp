// Monte-Carlo channel: per-message Bernoulli delivery draws against the
// analytic RadioModel, for experiments that need realistic run-to-run
// variance (the analytic model returns expectations). Deterministic
// under a fixed seed.
#pragma once

#include <cstdint>

#include "net/radio.hpp"
#include "net/topology.hpp"

namespace wishbone::net {

/// xorshift64* PRNG: small, fast, deterministic across platforms. The
/// shared randomness substrate of every stochastic/fault component, so
/// (seed, config) replays a run bit-for-bit on any host.
struct Xorshift64 {
  std::uint64_t state;

  explicit Xorshift64(std::uint64_t seed)
      : state(0x9E3779B97F4A7C15ULL ^ (seed + 1)) {}

  [[nodiscard]] std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform draw in [0, 1).
  [[nodiscard]] double next_uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform draw in [lo, hi).
  [[nodiscard]] double next_in(double lo, double hi) {
    return lo + (hi - lo) * next_uniform();
  }

  /// Derives an independent child stream (splitmix-style hop) from the
  /// current state and stream_id without advancing this stream —
  /// components can fork in any order without perturbing each other or
  /// the parent, the property the fault schedule's replayability rests
  /// on.
  [[nodiscard]] Xorshift64 fork(std::uint64_t stream_id) const {
    std::uint64_t z = state + 0x9E3779B97F4A7C15ULL * (stream_id + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return Xorshift64(z ^ (z >> 31));
  }
};

class StochasticChannel {
 public:
  StochasticChannel(RadioModel radio, TreeTopology topo, std::uint32_t seed);

  /// Draws one message outcome at the given aggregate per-node payload
  /// sending rate (bytes/s).
  [[nodiscard]] bool try_deliver(double per_node_payload_rate);

  /// Sends `messages` at the given rate; returns how many arrived.
  [[nodiscard]] std::uint64_t deliver_count(double per_node_payload_rate,
                                            std::uint64_t messages);

  [[nodiscard]] const RadioModel& radio() const { return radio_; }
  [[nodiscard]] const TreeTopology& topology() const { return topo_; }

 private:
  RadioModel radio_;
  TreeTopology topo_;
  Xorshift64 rng_;
};

}  // namespace wishbone::net
