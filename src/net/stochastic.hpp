// Monte-Carlo channel: per-message Bernoulli delivery draws against the
// analytic RadioModel, for experiments that need realistic run-to-run
// variance (the analytic model returns expectations). Deterministic
// under a fixed seed.
#pragma once

#include <cstdint>

#include "net/radio.hpp"
#include "net/topology.hpp"

namespace wishbone::net {

class StochasticChannel {
 public:
  StochasticChannel(RadioModel radio, TreeTopology topo, std::uint32_t seed);

  /// Draws one message outcome at the given aggregate per-node payload
  /// sending rate (bytes/s).
  [[nodiscard]] bool try_deliver(double per_node_payload_rate);

  /// Sends `messages` at the given rate; returns how many arrived.
  [[nodiscard]] std::uint64_t deliver_count(double per_node_payload_rate,
                                            std::uint64_t messages);

  [[nodiscard]] const RadioModel& radio() const { return radio_; }
  [[nodiscard]] const TreeTopology& topology() const { return topo_; }

 private:
  RadioModel radio_;
  TreeTopology topo_;
  std::uint64_t state_;  ///< xorshift64* PRNG state

  double next_uniform();
};

}  // namespace wishbone::net
