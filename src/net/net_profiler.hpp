// Network profiling tool (§7.3.1): "Our profiling tool takes as input a
// target reception rate (e.g. 90%), and returns a maximum send rate (in
// msgs/sec and bytes/sec) that the network can maintain."
//
// The tool gradually increases the per-node send rate on the simulated
// testbed, measuring delivery at each step (mirroring the portable
// WaveScript measurement program), then reports the highest rate whose
// reception ratio meets the target. Within that bound, sending more
// data yields more received data — the monotonicity assumption the
// §4.3 rate search depends on.
#pragma once

#include <vector>

#include "net/radio.hpp"
#include "net/topology.hpp"

namespace wishbone::net {

struct NetProfilePoint {
  double per_node_payload_bytes_per_sec = 0.0;
  double per_node_msgs_per_sec = 0.0;
  double reception_ratio = 0.0;
  double delivered_payload_bytes_per_sec = 0.0;  ///< per node
};

struct NetProfileResult {
  std::vector<NetProfilePoint> sweep;  ///< the measured rate ramp
  double max_payload_bytes_per_sec = 0.0;  ///< per node, meeting target
  double max_msgs_per_sec = 0.0;
  double reception_at_max = 0.0;
};

/// Ramps the send rate from `start` to `stop` bytes/s (payload, per
/// node) in `steps` multiplicative steps and returns the sweep plus the
/// highest rate meeting `target_reception`.
[[nodiscard]] NetProfileResult profile_network(
    const RadioModel& radio, const TreeTopology& topo,
    double target_reception = 0.9, double start_bytes_per_sec = 10.0,
    double stop_bytes_per_sec = 1e6, std::size_t steps = 64);

}  // namespace wishbone::net
