// Routing-tree topology: all traffic funnels through the link at the
// root of the collection tree, which is the shared bottleneck the paper
// identifies ("a many node network is limited by the same bottleneck as
// a network of only one node: the single link at the root of the
// routing tree", §7.3).
#pragma once

#include <cstddef>

#include "net/radio.hpp"

namespace wishbone::net {

class TreeTopology {
 public:
  /// `num_nodes` leaves/relays all reporting to one basestation. The
  /// average hop count grows logarithmically with the network size
  /// (balanced collection tree with the given fanout).
  explicit TreeTopology(std::size_t num_nodes, std::size_t fanout = 4);

  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }

  /// Mean hops from a node to the basestation.
  [[nodiscard]] double average_hops() const { return avg_hops_; }

  /// Aggregate on-air load when every node sends `per_node_payload`
  /// payload bytes/s: every message occupies the shared medium once per
  /// hop it travels.
  [[nodiscard]] double aggregate_on_air(const RadioModel& radio,
                                        double per_node_payload) const;

  /// Fraction of messages delivered to the basestation when every node
  /// offers `per_node_payload` bytes/s of payload.
  [[nodiscard]] double delivery_fraction(const RadioModel& radio,
                                         double per_node_payload) const;

 private:
  std::size_t num_nodes_;
  double avg_hops_;
};

}  // namespace wishbone::net
