#include "core/wishbone.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace wishbone::core {

Wishbone::Wishbone(graph::Graph& g, profile::PlatformModel platform,
                   CompileOptions opts)
    : g_(g), platform_(std::move(platform)), opts_(std::move(opts)) {
  if (auto err = g.validate()) {
    throw util::ContractError("Wishbone: invalid graph: " + *err);
  }
}

CompileReport Wishbone::compile(
    const std::map<graph::OperatorId, std::vector<graph::Frame>>& traces,
    std::size_t num_events, double events_per_sec) {
  profile::Profiler prof(g_);
  const profile::ProfileData pd = prof.run(traces, num_events);
  g_.reset_state();
  return run(pd, events_per_sec);
}

CompileReport Wishbone::partition_only(const profile::ProfileData& pd,
                                       double events_per_sec) const {
  return run(pd, events_per_sec);
}

CompileReport Wishbone::run(const profile::ProfileData& pd,
                            double events_per_sec) const {
  WB_REQUIRE(events_per_sec > 0, "event rate must be positive");
  CompileReport rep;
  rep.profile = pd;
  rep.requested_rate = events_per_sec;
  rep.pins = graph::analyze_pins(g_, opts_.mode);

  auto problem_at = [&](double rate) {
    return partition::make_problem(g_, rep.pins, pd, platform_, rate);
  };

  partition::PartitionProblem prob = problem_at(events_per_sec);
  partition::PartitionResult res =
      partition::solve_partition(prob, opts_.partition);

  std::ostringstream msg;
  if (res.feasible) {
    rep.feasible_at_requested_rate = true;
    rep.partition_rate = events_per_sec;
    res.sides = partition::expand_assignment(prob, res.sides,
                                             g_.num_operators());
    rep.partition = std::move(res);
    msg << "feasible at " << events_per_sec << " events/s on "
        << platform_.name << ": " << rep.partition.node_partition_size
        << " operators in the node partition, CPU "
        << rep.partition.cpu_used << " of " << prob.cpu_budget
        << ", uplink " << rep.partition.net_used << " of "
        << prob.net_budget << " B/s";
  } else {
    msg << "no partition fits at " << events_per_sec << " events/s on "
        << platform_.name << " (CPU budget " << prob.cpu_budget
        << ", uplink budget " << prob.net_budget << " B/s)";
    if (opts_.search_rate_on_overload) {
      partition::RateSearchOptions rs;
      rs.partition = opts_.partition;
      rs.min_rate = events_per_sec / 4096.0;
      rs.max_rate = events_per_sec;
      rs.rel_tol = opts_.rate_search_rel_tol;
      const partition::RateSearchResult found =
          partition::max_sustainable_rate(problem_at, rs);
      if (found.any_feasible) {
        rep.max_sustainable_rate = found.max_rate;
        rep.partition_rate = found.max_rate;
        partition::PartitionProblem prob_max = problem_at(found.max_rate);
        rep.partition = found.partition_at_max;
        rep.partition.sides = partition::expand_assignment(
            prob_max, rep.partition.sides, g_.num_operators());
        msg << "; maximum sustainable rate is " << found.max_rate
            << " events/s (" << (100.0 * found.max_rate / events_per_sec)
            << "% of requested) — reduce the sampling rate or accept "
            << "load shedding at the sources";
      } else {
        msg << "; no rate admits a partition: the pinned operators alone "
            << "exceed the budgets — use a more capable platform";
      }
    }
  }
  rep.message = msg.str();

  // Visualization (§3): heat from the profile, shapes from the cut.
  graph::DotOptions dot;
  dot.heat = pd.heat(platform_);
  if (rep.partition.feasible &&
      rep.partition.sides.size() == g_.num_operators()) {
    dot.assignment = rep.partition.sides;
  }
  std::vector<std::string> labels;
  labels.reserve(g_.num_edges());
  for (std::size_t ei = 0; ei < g_.num_edges(); ++ei) {
    std::ostringstream l;
    l << pd.bandwidth(ei, rep.partition_rate > 0 ? rep.partition_rate
                                                 : events_per_sec)
      << " B/s";
    labels.push_back(l.str());
  }
  dot.edge_labels = std::move(labels);
  dot.graph_name = "wishbone_" + platform_.name;
  rep.dot = graph::to_dot(g_, dot);
  return rep;
}

}  // namespace wishbone::core
