// The Wishbone compiler façade: the end-to-end profile-and-partition
// flow of §3, packaged as the library's primary entry point.
//
//   Graph + sample traces + target platform
//     -> profile (per-operator costs, per-edge rates)
//     -> pin analysis (movable subgraph, §2.1.1)
//     -> partition problem at the requested input rate
//     -> preprocessing + ILP + branch & bound (§4)
//     -> assignment, or — when nothing fits — the §4.3 rate search and
//        the maximum sustainable rate, plus actionable feedback
//     -> GraphViz visualization (§3)
//
// Wishbone is also intended as an interactive design aid (§1): the
// CompileReport carries enough information (profiles, budgets, solver
// timelines, infeasibility diagnostics) for a developer to decide
// whether to pick a beefier platform, shed load, or re-structure the
// program.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/dot.hpp"
#include "graph/graph.hpp"
#include "graph/pinning.hpp"
#include "partition/partitioner.hpp"
#include "partition/rate_search.hpp"
#include "profile/platform.hpp"
#include "profile/profiler.hpp"

namespace wishbone::core {

struct CompileOptions {
  graph::Mode mode = graph::Mode::kPermissive;
  partition::PartitionOptions partition;
  /// When the requested rate is infeasible, search for the maximum
  /// sustainable rate instead of failing outright (§4.3).
  bool search_rate_on_overload = true;
  double rate_search_rel_tol = 0.01;
};

struct CompileReport {
  profile::ProfileData profile;
  graph::PinAnalysis pins;

  bool feasible_at_requested_rate = false;
  double requested_rate = 0.0;

  /// Partition at the requested rate if feasible, else at the maximum
  /// sustainable rate (when found).
  partition::PartitionResult partition;  ///< sides indexed by OperatorId
  double partition_rate = 0.0;           ///< rate the cut was solved for

  /// §4.3 outcome when the requested rate did not fit.
  std::optional<double> max_sustainable_rate;

  std::string dot;      ///< GraphViz visualization (heat + shapes)
  std::string message;  ///< human-readable feasibility feedback
};

class Wishbone {
 public:
  /// The graph is held by reference: profiling executes its operators
  /// (state is reset afterwards).
  Wishbone(graph::Graph& g, profile::PlatformModel platform,
           CompileOptions opts = {});

  /// Profiles on `traces` (num_events events) and partitions for a
  /// source event rate of `events_per_sec`.
  [[nodiscard]] CompileReport compile(
      const std::map<graph::OperatorId, std::vector<graph::Frame>>& traces,
      std::size_t num_events, double events_per_sec);

  /// Re-partitions using an existing profile (no re-execution); useful
  /// for rate sweeps and platform comparisons.
  [[nodiscard]] CompileReport partition_only(
      const profile::ProfileData& pd, double events_per_sec) const;

 private:
  CompileReport run(const profile::ProfileData& pd,
                    double events_per_sec) const;

  graph::Graph& g_;
  profile::PlatformModel platform_;
  CompileOptions opts_;
};

}  // namespace wishbone::core
