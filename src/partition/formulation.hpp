// ILP formulations of the partitioning problem (§4.2.1).
//
// Both encode f_v = 1 ("operator v lives on the node") with pinning via
// variable bounds (Eq. 1) and the CPU budget (Eq. 2). They differ in
// how the cut bandwidth is linearized:
//
//  - The *general* formulation introduces e_uv, e'_uv >= 0 per edge
//    with the four constraints of Eq. 3, permitting back-and-forth
//    data flow across the network: 2|E| + |V| variables.
//
//  - The *restricted* formulation (Eq. 6–7) assumes data crosses the
//    network once: f_u >= f_v on every edge, making the cut bandwidth
//    the linear expression sum (f_u - f_v) r_uv: only |V| variables.
//    This is the formulation Wishbone's prototype uses.
#pragma once

#include <vector>

#include "ilp/model.hpp"
#include "partition/problem.hpp"

namespace wishbone::partition {

enum class Formulation { kRestricted, kGeneral };

/// Builds the ILP for `p`. Variable 0..|V|-1 are the f_v indicators (in
/// vertex order); the general formulation appends e/e' pairs per edge.
[[nodiscard]] ilp::LinearProgram build_ilp(const PartitionProblem& p,
                                           Formulation form);

/// Decodes a solver assignment back to sides (f_v >= 0.5 -> node).
[[nodiscard]] std::vector<Side> decode_solution(
    const PartitionProblem& p, const std::vector<double>& x);

/// Rounding heuristic used to warm-start branch and bound: thresholds
/// the LP-relaxation values of f (which are monotone along edges in the
/// restricted formulation, so every threshold yields a valid cut) and
/// returns the best feasible assignment found, if any. The returned
/// vector is a full variable assignment for the *restricted* model.
[[nodiscard]] std::optional<std::vector<double>> threshold_round(
    const PartitionProblem& p, const std::vector<double>& relaxed_f);

}  // namespace wishbone::partition
