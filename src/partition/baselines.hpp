// Baseline partitioners used to validate and ablate the ILP approach:
//
//  - exhaustive_partition: enumerates every assignment of the movable
//    vertices (ground truth for small graphs in tests and benches);
//  - pipeline_cuts: enumerates the cut points of a linear pipeline —
//    the "brute force testing of all cut points" the paper notes would
//    suffice for the 8-operator speech application (§7.2);
//  - greedy_partition: list-scheduling-flavoured heuristic that grows
//    the node partition along the data flow while the objective
//    improves — representative of the non-optimal heuristics (METIS /
//    list scheduling) that §4 argues are a poor fit.
#pragma once

#include <optional>
#include <vector>

#include "partition/problem.hpp"

namespace wishbone::partition {

struct BaselineResult {
  bool feasible = false;
  std::vector<Side> sides;
  double objective = 0.0;
  double cpu_used = 0.0;
  double net_used = 0.0;
  std::size_t evaluated = 0;  ///< assignments examined
};

/// Exact search over all 2^k assignments of the k movable vertices,
/// restricted to unidirectional cuts. Throws if k > 24.
[[nodiscard]] BaselineResult exhaustive_partition(const PartitionProblem& p);

/// For a problem whose DAG is a single chain: tries every prefix cut
/// (prefix on the node, suffix on the server). Index i of `cut_results`
/// keeps the first i chain vertices on the node. Throws if the problem
/// is not a chain.
struct PipelineCut {
  std::size_t prefix_len = 0;
  bool feasible = false;
  double objective = 0.0;
  double cpu_used = 0.0;
  double net_used = 0.0;
};
[[nodiscard]] std::vector<PipelineCut> pipeline_cuts(
    const PartitionProblem& p);

/// Greedy: start with only the node-pinned vertices on the node, then
/// repeatedly move the frontier vertex with the best objective delta
/// while the CPU budget allows. Not optimal; used for ablation.
[[nodiscard]] BaselineResult greedy_partition(const PartitionProblem& p);

/// All-at-basestation: only the node-pinned vertices (the sources) stay
/// on the node, everything else runs server-side — the paper's "ship
/// the raw data" configuration. Needs no solver and no profile, which
/// makes it the unconditional last rung of the online repartitioner's
/// degradation ladder; `feasible` reports whether the raw cut fits the
/// budgets, but the sides are always returned.
[[nodiscard]] BaselineResult server_baseline(const PartitionProblem& p);

}  // namespace wishbone::partition
