#include "partition/problem.hpp"

#include <queue>

#include "util/assert.hpp"

namespace wishbone::partition {

std::vector<std::size_t> PartitionProblem::topo_order() const {
  std::vector<std::size_t> indeg(vertices.size(), 0);
  std::vector<std::vector<std::size_t>> out(vertices.size());
  for (std::size_t ei = 0; ei < edges.size(); ++ei) {
    ++indeg[edges[ei].to];
    out[edges[ei].from].push_back(ei);
  }
  std::queue<std::size_t> ready;
  for (std::size_t v = 0; v < vertices.size(); ++v) {
    if (indeg[v] == 0) ready.push(v);
  }
  std::vector<std::size_t> order;
  order.reserve(vertices.size());
  while (!ready.empty()) {
    const std::size_t v = ready.front();
    ready.pop();
    order.push_back(v);
    for (std::size_t ei : out[v]) {
      if (--indeg[edges[ei].to] == 0) ready.push(edges[ei].to);
    }
  }
  WB_REQUIRE(order.size() == vertices.size(),
             "partition problem contains a cycle");
  return order;
}

double PartitionProblem::in_bandwidth(std::size_t v) const {
  double s = 0.0;
  for (const ProblemEdge& e : edges) {
    if (e.to == v) s += e.bandwidth;
  }
  return s;
}

double PartitionProblem::out_bandwidth(std::size_t v) const {
  double s = 0.0;
  for (const ProblemEdge& e : edges) {
    if (e.from == v) s += e.bandwidth;
  }
  return s;
}

void PartitionProblem::check() const {
  WB_REQUIRE(!vertices.empty(), "partition problem has no vertices");
  WB_REQUIRE(cpu_budget >= 0.0 && net_budget >= 0.0, "negative budget");
  WB_REQUIRE(alpha >= 0.0 && beta >= 0.0, "negative objective weight");
  for (const ProblemVertex& v : vertices) {
    WB_REQUIRE(v.cpu >= 0.0, "negative CPU weight on '" + v.name + "'");
    WB_REQUIRE(v.ram_bytes >= 0.0 && v.rom_bytes >= 0.0,
               "negative memory weight on '" + v.name + "'");
  }
  for (const ProblemEdge& e : edges) {
    WB_REQUIRE(e.from < vertices.size() && e.to < vertices.size(),
               "edge endpoint out of range");
    WB_REQUIRE(e.from != e.to, "self-loop in partition problem");
    WB_REQUIRE(e.bandwidth >= 0.0, "negative bandwidth");
  }
  (void)topo_order();
}

AssignmentEval evaluate_assignment(const PartitionProblem& p,
                                   const std::vector<Side>& sides) {
  WB_REQUIRE(sides.size() == p.vertices.size(),
             "assignment size mismatch");
  AssignmentEval ev;
  for (std::size_t v = 0; v < p.vertices.size(); ++v) {
    const Requirement r = p.vertices[v].req;
    if (r == Requirement::kNode && sides[v] != Side::kNode) {
      ev.respects_pins = false;
    }
    if (r == Requirement::kServer && sides[v] != Side::kServer) {
      ev.respects_pins = false;
    }
    if (sides[v] == Side::kNode) {
      ev.cpu += p.vertices[v].cpu;
      ev.ram += p.vertices[v].ram_bytes;
      ev.rom += p.vertices[v].rom_bytes;
    }
  }
  for (const ProblemEdge& e : p.edges) {
    if (sides[e.from] != sides[e.to]) {
      ev.net += e.bandwidth;
      if (sides[e.from] == Side::kServer) ev.unidirectional = false;
    }
  }
  return ev;
}

double objective_of(const PartitionProblem& p, const AssignmentEval& ev) {
  return p.alpha * ev.cpu + p.beta * ev.net;
}

PartitionProblem make_problem(const graph::Graph& g,
                              const graph::PinAnalysis& pins,
                              const profile::ProfileData& pd,
                              const profile::PlatformModel& plat,
                              double events_per_sec, LoadStatistic stat) {
  WB_REQUIRE(events_per_sec > 0.0, "event rate must be positive");
  WB_REQUIRE(pins.requirement.size() == g.num_operators(),
             "pin analysis does not match graph");
  PartitionProblem p;
  p.vertices.reserve(g.num_operators());
  for (OperatorId v = 0; v < g.num_operators(); ++v) {
    const graph::OperatorInfo& oi = g.info(v);
    ProblemVertex pv;
    pv.name = oi.name;
    pv.cpu = stat == LoadStatistic::kMean
                 ? pd.cpu_fraction(plat, v, events_per_sec)
                 : pd.peak_cpu_fraction(plat, v, events_per_sec);
    pv.req = pins.requirement[v];
    pv.ops = {v};
    // Memory: developer-declared footprint, or an estimate from the
    // profile. The depth-first runtime passes frames downstream without
    // per-operator queues (§5.2), so the estimate charges fixed state
    // plus a fraction of one output frame of scratch.
    if (oi.ram_bytes > 0) {
      pv.ram_bytes = static_cast<double>(oi.ram_bytes);
    } else {
      const double avg_frame =
          pd.op_elements_out[v] > 0
              ? pd.op_bytes_out[v] /
                    static_cast<double>(pd.op_elements_out[v])
              : 0.0;
      pv.ram_bytes = 48.0 + 0.25 * avg_frame;
    }
    pv.rom_bytes = oi.rom_bytes > 0 ? static_cast<double>(oi.rom_bytes)
                                    : 600.0;
    p.vertices.push_back(std::move(pv));
  }
  p.edges.reserve(g.num_edges());
  for (std::size_t ei = 0; ei < g.num_edges(); ++ei) {
    const graph::Edge& e = g.edges()[ei];
    const double bw = stat == LoadStatistic::kMean
                          ? pd.bandwidth(ei, events_per_sec)
                          : pd.peak_bandwidth(ei, events_per_sec);
    p.edges.push_back(ProblemEdge{e.from, e.to, bw});
  }
  p.cpu_budget = plat.cpu_budget;
  p.net_budget = plat.radio_bytes_per_sec;
  p.ram_budget = plat.ram_budget_bytes;
  p.rom_budget = plat.rom_budget_bytes;
  p.alpha = plat.alpha;
  p.beta = plat.beta;
  p.check();
  return p;
}

std::vector<Side> expand_assignment(const PartitionProblem& p,
                                    const std::vector<Side>& sides,
                                    std::size_t num_operators) {
  WB_REQUIRE(sides.size() == p.vertices.size(), "assignment size mismatch");
  std::vector<Side> out(num_operators, Side::kServer);
  for (std::size_t v = 0; v < p.vertices.size(); ++v) {
    for (OperatorId op : p.vertices[v].ops) {
      WB_REQUIRE(op < num_operators, "operator id out of range in mapping");
      out[op] = sides[v];
    }
  }
  return out;
}

}  // namespace wishbone::partition
