#include "partition/rate_search.hpp"

#include "util/assert.hpp"

namespace wishbone::partition {

RateSearchResult max_sustainable_rate(
    const std::function<PartitionProblem(double)>& problem_at,
    const RateSearchOptions& opts) {
  WB_REQUIRE(opts.min_rate > 0 && opts.max_rate > opts.min_rate,
             "rate search: bad bracket");
  RateSearchResult res;

  // Successive probes usually solve structurally identical ILPs (same
  // graph, rescaled coefficients), so each solve inherits the previous
  // probe's final simplex basis; loading costs one refactorization
  // under the configured basis engine. The solver pre-flights the
  // inherited basis (Basis::compatible_with: shape + structure hash)
  // and cold-starts when this rate's formulation differs — matching
  // dimensions alone are not enough, since preprocessing can merge
  // differently and resource rows can appear or vanish with the rate
  // (probes_with_rejected_basis counts those stale inherits).
  ilp::Basis carried_basis;
  auto attempt = [&](double rate) {
    ++res.partitions_solved;
    PartitionOptions po = opts.partition;
    if (!carried_basis.empty() && !po.mip.warm_basis) {
      po.mip.warm_basis = carried_basis;
    }
    PartitionResult r = solve_partition(problem_at(rate), po);
    if (!r.solver.final_basis.empty()) {
      carried_basis = r.solver.final_basis;
    }
    res.total_bnb_nodes += r.solver.nodes_explored;
    res.total_lp_iterations += r.solver.lp_iterations;
    res.total_basis_refactorizations += r.solver.basis_refactorizations;
    res.total_eta_updates += r.solver.eta_updates;
    res.total_steals += r.solver.steals;
    res.total_snapshot_reloads += r.solver.snapshot_reloads;
    res.total_idle_s += r.solver.idle_s_total;
    res.total_dual_reentries += r.solver.dual_reentries;
    res.total_phase1_reentries += r.solver.phase1_reentries;
    res.total_phase1_fallbacks += r.solver.phase1_fallbacks;
    if (r.solver.warm_basis_loaded) ++res.probes_with_inherited_basis;
    if (r.solver.warm_basis_rejected) ++res.probes_with_rejected_basis;
    return r;
  };

  // Fast path: everything fits at the top of the bracket.
  PartitionResult top = attempt(opts.max_rate);
  if (top.feasible) {
    res.any_feasible = true;
    res.max_rate = opts.max_rate;
    res.partition_at_max = std::move(top);
    return res;
  }
  PartitionResult bottom = attempt(opts.min_rate);
  if (!bottom.feasible) {
    return res;  // nothing fits even at the minimum rate
  }

  double lo = opts.min_rate;   // known feasible
  double hi = opts.max_rate;   // known infeasible
  res.any_feasible = true;
  res.max_rate = lo;
  res.partition_at_max = std::move(bottom);

  for (std::size_t i = 0;
       i < opts.max_iterations && (hi - lo) > opts.rel_tol * lo; ++i) {
    const double mid = 0.5 * (lo + hi);
    PartitionResult r = attempt(mid);
    if (r.feasible) {
      lo = mid;
      res.max_rate = mid;
      res.partition_at_max = std::move(r);
    } else {
      hi = mid;
    }
  }
  return res;
}

}  // namespace wishbone::partition
