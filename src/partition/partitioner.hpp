// The Wishbone partitioner (§3–4): preprocess, formulate as an ILP,
// solve with branch and bound, and decode the optimal node/server cut.
#pragma once

#include <optional>

#include "graph/pinning.hpp"
#include "ilp/branch_and_bound.hpp"
#include "partition/formulation.hpp"
#include "partition/preprocess.hpp"
#include "partition/problem.hpp"

namespace wishbone::partition {

struct PartitionOptions {
  bool preprocess = true;                   ///< §4.1 merge pass
  Formulation formulation = Formulation::kRestricted;
  bool warm_start = true;                   ///< LP-threshold rounding
  /// Solver configuration, forwarded to branch and bound unchanged.
  /// `mip.threads` picks the parallel worker count for every solve
  /// (the threshold-rounding hook the partitioner installs is pure, so
  /// it is safe at any thread count); `mip.warm_basis` threads a basis
  /// in from a previous structurally identical solve.
  ilp::MipOptions mip;
};

struct PartitionResult {
  bool feasible = false;
  /// Per-problem-vertex assignment (pre-expansion); empty if infeasible.
  std::vector<Side> sides;
  double objective = 0.0;
  double cpu_used = 0.0;
  double net_used = 0.0;           ///< cut payload bandwidth, bytes/s
  double ram_used = 0.0;           ///< node static memory, bytes
  double rom_used = 0.0;           ///< node code storage, bytes
  std::size_t node_partition_size = 0;  ///< vertices assigned to the node

  PreprocessStats prep;
  ilp::MipResult solver;           ///< includes Fig. 6 timing data

  /// Expands sides to original operators (requires the problem that
  /// produced this result).
  [[nodiscard]] std::vector<Side> operator_assignment(
      const PartitionProblem& solved_problem,
      std::size_t num_operators) const;
};

/// Partitions `p`. The returned sides index the vertices of `p` itself
/// (not the condensed problem; condensation is internal).
[[nodiscard]] PartitionResult solve_partition(
    const PartitionProblem& p, const PartitionOptions& opts = {});

/// End-to-end convenience: pin analysis + problem construction +
/// partitioning for a profiled graph at a given input rate, returning
/// per-operator sides through `result.sides` (already expanded).
[[nodiscard]] PartitionResult partition_graph(
    const graph::Graph& g, const profile::ProfileData& pd,
    const profile::PlatformModel& plat, double events_per_sec,
    graph::Mode mode = graph::Mode::kPermissive,
    const PartitionOptions& opts = {});

}  // namespace wishbone::partition
