// Three-tier partitioning (§9): motes report to microservers, which
// report to the central server — "We have verified that we can use an
// ILP approach for a restricted three tier network architecture.
// (Motes communicate only to microservers, and microservers to the
// central server.)"
//
// Encoding: each operator takes a tier t_v in {0 = mote, 1 = micro,
// 2 = server}, expressed with two binaries
//     g_v = [t_v >= 1]   (moved off the mote)
//     h_v = [t_v >= 2]   (moved past the microserver)
// with h_v <= g_v. The restricted (single-crossing per link) model
// makes tiers non-decreasing along every edge: g_u <= g_v, h_u <= h_v.
//
//   mote-radio cut:      net1 = sum (g_v - g_u) r_uv
//   microserver uplink:  net2 = sum (h_v - h_u) r_uv
//   mote CPU:            sum (1 - g_v) c1_v <= C1
//   microserver CPU:     sum (g_v - h_v) c2_v <= C2
//   objective: min a1*cpu1 + a2*cpu2 + b1*net1 + b2*net2
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/pinning.hpp"
#include "ilp/branch_and_bound.hpp"
#include "profile/profiler.hpp"

namespace wishbone::partition {

enum class Tier : int { kMote = 0, kMicro = 1, kServer = 2 };

/// Placement requirement in the three-tier model: the lowest and
/// highest tier an operator may occupy.
struct TierRange {
  Tier min = Tier::kMote;
  Tier max = Tier::kServer;
};

struct ThreeTierVertex {
  std::string name;
  double cpu_mote = 0.0;   ///< CPU fraction if placed on a mote
  double cpu_micro = 0.0;  ///< CPU fraction if placed on the microserver
  TierRange range;
};

struct ThreeTierEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  double bandwidth = 0.0;
};

struct ThreeTierProblem {
  std::vector<ThreeTierVertex> vertices;
  std::vector<ThreeTierEdge> edges;
  double mote_cpu_budget = 1.0;
  double micro_cpu_budget = 1.0;
  double mote_net_budget = 0.0;   ///< mote radio capacity (bytes/s)
  double micro_net_budget = 0.0;  ///< microserver uplink (bytes/s)
  double alpha_mote = 0.0;
  double alpha_micro = 0.0;
  double beta_mote = 1.0;
  double beta_micro = 1.0;

  void check() const;
};

struct ThreeTierResult {
  bool feasible = false;
  std::vector<Tier> tiers;
  double objective = 0.0;
  double mote_cpu = 0.0;
  double micro_cpu = 0.0;
  double mote_net = 0.0;
  double micro_net = 0.0;
  ilp::MipResult solver;
};

/// Builds and solves the three-tier ILP.
[[nodiscard]] ThreeTierResult solve_three_tier(
    const ThreeTierProblem& p, const ilp::MipOptions& mip = {});

/// Builds a three-tier problem from a profiled graph: mote CPU costs
/// from `mote`, microserver CPU costs from `micro`, bandwidths at the
/// given event rate. Pin analysis maps node-pinned operators to the
/// mote tier and server-pinned ones to the server tier.
[[nodiscard]] ThreeTierProblem make_three_tier_problem(
    const graph::Graph& g, const graph::PinAnalysis& pins,
    const profile::ProfileData& pd, const profile::PlatformModel& mote,
    const profile::PlatformModel& micro, double events_per_sec);

/// Exhaustive ground truth over monotone tier assignments (for tests;
/// throws if the free-vertex count exceeds ~15).
[[nodiscard]] ThreeTierResult exhaustive_three_tier(
    const ThreeTierProblem& p);

/// Evaluates a tier assignment; returns feasibility and resource use.
struct TierEval {
  bool respects_range = true;
  bool monotone = true;  ///< tiers non-decreasing along edges
  double mote_cpu = 0.0;
  double micro_cpu = 0.0;
  double mote_net = 0.0;
  double micro_net = 0.0;
  [[nodiscard]] bool feasible(const ThreeTierProblem& p) const;
};
[[nodiscard]] TierEval evaluate_tiers(const ThreeTierProblem& p,
                                      const std::vector<Tier>& tiers);
[[nodiscard]] double tier_objective(const ThreeTierProblem& p,
                                    const TierEval& ev);

}  // namespace wishbone::partition
