// Graph preprocessing (§4.1): eliminate edges that can never be viable
// cut points by merging data-neutral / data-expanding operators with
// their downstream operator, shrinking the ILP without losing optimal
// solutions.
//
// We contract an edge u -> v exactly when all of the following hold,
// which together guarantee optimality preservation and acyclicity:
//  - u has out-degree 1, so every path leaving u starts with the
//    contracted edge and no alternate u ~> v path can close a cycle;
//  - bandwidth(u->v) >= total input bandwidth of u (u is data-neutral
//    or data-expanding): any cut on u->v can be moved to u's input
//    edges without increasing bandwidth, while u moving to the server
//    strictly relieves node CPU;
//  - u is not node-pinned (if it were, no cut above u exists and u->v
//    could be a required cut point) — unless v is itself node-pinned,
//    in which case u->v can never be cut anyway;
//  - the merged cluster's pins are consistent (never node+server).
//
// Contraction repeats to a fixed point, so whole chains of neutral
// operators collapse into their first data-reducing successor.
#pragma once

#include "partition/problem.hpp"

namespace wishbone::partition {

struct PreprocessStats {
  std::size_t vertices_before = 0;
  std::size_t vertices_after = 0;
  std::size_t edges_before = 0;
  std::size_t edges_after = 0;
  std::size_t rounds = 0;
};

/// Returns the condensed problem. Vertex `ops` lists are unioned so the
/// result still maps back to original operators; budgets and objective
/// weights are copied through.
[[nodiscard]] PartitionProblem preprocess(const PartitionProblem& p,
                                          PreprocessStats* stats = nullptr);

}  // namespace wishbone::partition
