// PartitionProblem: the abstract instance handed to the partitioning
// algorithms (§4): a DAG whose vertex weights are node-CPU costs and
// whose edge weights are bandwidths, plus resource budgets and the
// objective coefficients alpha/beta.
//
// Vertices carry a placement Requirement (node-pinned, server-pinned or
// movable) rather than only the movable subset, so that formulations
// can pin by variable bounds (Eq. 1). Each vertex remembers which
// original graph operators it stands for, which lets the preprocessing
// pass (§4.1) merge vertices while results remain expressible per
// original operator.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/pinning.hpp"
#include "profile/platform.hpp"
#include "profile/profiler.hpp"

namespace wishbone::partition {

using graph::OperatorId;
using graph::Requirement;
using graph::Side;

/// Sentinel: the resource is not constrained.
inline constexpr double kNoResourceBudget = 1e300;

struct ProblemVertex {
  std::string name;
  double cpu = 0.0;  ///< node-CPU fraction consumed at the given rate
  double ram_bytes = 0.0;  ///< static state + buffers if on the node
  double rom_bytes = 0.0;  ///< code storage if on the node
  Requirement req = Requirement::kMovable;
  std::vector<OperatorId> ops;  ///< original operators represented
};

struct ProblemEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  double bandwidth = 0.0;  ///< payload bytes/s crossing this stream
};

struct PartitionProblem {
  std::vector<ProblemVertex> vertices;
  std::vector<ProblemEdge> edges;

  double cpu_budget = 1.0;   ///< C in Eq. 2 (fraction of node CPU)
  double net_budget = 0.0;   ///< N in Eq. 4 (payload bytes/s)
  /// §4.2.1: "Adding additional constraints for RAM usage (assuming
  /// static allocation) or code storage is straightforward in this
  /// formulation" — enabled whenever a finite budget is set.
  double ram_budget = kNoResourceBudget;
  double rom_budget = kNoResourceBudget;
  double alpha = 0.0;        ///< objective weight on CPU (Eq. 5)
  double beta = 1.0;         ///< objective weight on network (Eq. 5)

  [[nodiscard]] std::size_t num_vertices() const { return vertices.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges.size(); }

  /// Topological order of the problem DAG; throws on cycles.
  [[nodiscard]] std::vector<std::size_t> topo_order() const;

  /// Sum of bandwidths into / out of vertex v.
  [[nodiscard]] double in_bandwidth(std::size_t v) const;
  [[nodiscard]] double out_bandwidth(std::size_t v) const;

  /// Sanity checks (non-negative weights, edge indices in range,
  /// acyclicity); throws ContractError on violation.
  void check() const;
};

/// Evaluation of a concrete assignment against a problem.
struct AssignmentEval {
  bool respects_pins = true;
  bool unidirectional = true;  ///< no server->node edge (§2.1.2)
  double cpu = 0.0;            ///< node CPU used
  double net = 0.0;            ///< cut bandwidth (both directions)
  double ram = 0.0;            ///< node RAM used (bytes)
  double rom = 0.0;            ///< node code storage used (bytes)
  [[nodiscard]] bool feasible(const PartitionProblem& p) const {
    return respects_pins && cpu <= p.cpu_budget + 1e-9 &&
           net <= p.net_budget + 1e-9 &&
           ram <= p.ram_budget * (1.0 + 1e-12) + 1e-9 &&
           rom <= p.rom_budget * (1.0 + 1e-12) + 1e-9;
  }
};

/// Evaluates `sides` (one per problem vertex) under `p`. Counts every
/// cut edge's bandwidth regardless of direction (general model); the
/// `unidirectional` flag reports whether the restricted model's
/// single-crossing property holds.
[[nodiscard]] AssignmentEval evaluate_assignment(const PartitionProblem& p,
                                                 const std::vector<Side>& sides);

/// Objective value alpha*cpu + beta*net of an evaluated assignment.
[[nodiscard]] double objective_of(const PartitionProblem& p,
                                  const AssignmentEval& ev);

/// Which profiled load statistic to budget against (§4: "Because our
/// applications have predictable rates, we use mean load here. Peak
/// loads might be more appropriate in applications characterized by
/// 'bursty' rates").
enum class LoadStatistic { kMean, kPeak };

/// Builds a problem from a profiled graph: one vertex per operator,
/// CPU fractions and bandwidths scaled to `events_per_sec` on platform
/// `plat`. Budgets default to the platform's CPU budget and radio
/// goodput; alpha/beta default to the platform's objective weights.
[[nodiscard]] PartitionProblem make_problem(
    const graph::Graph& g, const graph::PinAnalysis& pins,
    const profile::ProfileData& pd, const profile::PlatformModel& plat,
    double events_per_sec, LoadStatistic stat = LoadStatistic::kMean);

/// Expands per-problem-vertex sides to per-original-operator sides.
[[nodiscard]] std::vector<Side> expand_assignment(
    const PartitionProblem& p, const std::vector<Side>& sides,
    std::size_t num_operators);

}  // namespace wishbone::partition
