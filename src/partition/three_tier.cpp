#include "partition/three_tier.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace wishbone::partition {

void ThreeTierProblem::check() const {
  WB_REQUIRE(!vertices.empty(), "three-tier problem has no vertices");
  for (const ThreeTierVertex& v : vertices) {
    WB_REQUIRE(v.cpu_mote >= 0.0 && v.cpu_micro >= 0.0,
               "negative CPU weight on '" + v.name + "'");
    WB_REQUIRE(static_cast<int>(v.range.min) <= static_cast<int>(v.range.max),
               "empty tier range on '" + v.name + "'");
  }
  for (const ThreeTierEdge& e : edges) {
    WB_REQUIRE(e.from < vertices.size() && e.to < vertices.size(),
               "edge endpoint out of range");
    WB_REQUIRE(e.from != e.to, "self-loop");
    WB_REQUIRE(e.bandwidth >= 0.0, "negative bandwidth");
  }
  WB_REQUIRE(mote_cpu_budget >= 0 && micro_cpu_budget >= 0 &&
                 mote_net_budget >= 0 && micro_net_budget >= 0,
             "negative budget");
}

bool TierEval::feasible(const ThreeTierProblem& p) const {
  return respects_range && monotone &&
         mote_cpu <= p.mote_cpu_budget + 1e-9 &&
         micro_cpu <= p.micro_cpu_budget + 1e-9 &&
         mote_net <= p.mote_net_budget + 1e-9 &&
         micro_net <= p.micro_net_budget + 1e-9;
}

TierEval evaluate_tiers(const ThreeTierProblem& p,
                        const std::vector<Tier>& tiers) {
  WB_REQUIRE(tiers.size() == p.vertices.size(), "tier vector size mismatch");
  TierEval ev;
  for (std::size_t v = 0; v < tiers.size(); ++v) {
    const int t = static_cast<int>(tiers[v]);
    if (t < static_cast<int>(p.vertices[v].range.min) ||
        t > static_cast<int>(p.vertices[v].range.max)) {
      ev.respects_range = false;
    }
    if (tiers[v] == Tier::kMote) ev.mote_cpu += p.vertices[v].cpu_mote;
    if (tiers[v] == Tier::kMicro) ev.micro_cpu += p.vertices[v].cpu_micro;
  }
  for (const ThreeTierEdge& e : p.edges) {
    const int tu = static_cast<int>(tiers[e.from]);
    const int tv = static_cast<int>(tiers[e.to]);
    if (tu > tv) ev.monotone = false;
    if (tu < 1 && tv >= 1) ev.mote_net += e.bandwidth;
    if (tu < 2 && tv >= 2) ev.micro_net += e.bandwidth;
  }
  return ev;
}

double tier_objective(const ThreeTierProblem& p, const TierEval& ev) {
  return p.alpha_mote * ev.mote_cpu + p.alpha_micro * ev.micro_cpu +
         p.beta_mote * ev.mote_net + p.beta_micro * ev.micro_net;
}

ThreeTierResult solve_three_tier(const ThreeTierProblem& p,
                                 const ilp::MipOptions& mip) {
  p.check();
  const std::size_t n = p.vertices.size();
  ilp::LinearProgram lp;

  // Variables: g_v then h_v, with pinning via bounds and linearized
  // network terms in the objective coefficients:
  //   net1 = sum_e r_e (g_to - g_from), net2 likewise over h.
  std::vector<double> g_net(n, 0.0), h_net(n, 0.0);
  for (const ThreeTierEdge& e : p.edges) {
    g_net[e.to] += e.bandwidth;
    g_net[e.from] -= e.bandwidth;
    h_net[e.to] += e.bandwidth;
    h_net[e.from] -= e.bandwidth;
  }
  // CPU objective terms: cpu1 = sum (1-g) c1 (the constant part drops
  // out of the argmin); cpu2 = sum (g - h) c2. The reported objective
  // is recomputed from the decoded tiers, constants included.
  for (std::size_t v = 0; v < n; ++v) {
    const double g_obj = p.beta_mote * g_net[v] -
                         p.alpha_mote * p.vertices[v].cpu_mote +
                         p.alpha_micro * p.vertices[v].cpu_micro;
    const int g = lp.add_binary("g_" + p.vertices[v].name, g_obj);
    WB_ASSERT(g == static_cast<int>(v));
  }
  for (std::size_t v = 0; v < n; ++v) {
    const double h_obj = p.beta_micro * h_net[v] -
                         p.alpha_micro * p.vertices[v].cpu_micro;
    const int h = lp.add_binary("h_" + p.vertices[v].name, h_obj);
    WB_ASSERT(h == static_cast<int>(n + v));
  }
  // Pin via bounds: min tier m: g >= [m>=1], h >= [m>=2]; max tier M:
  // g <= [M>=1], h <= [M>=2].
  for (std::size_t v = 0; v < n; ++v) {
    const int mn = static_cast<int>(p.vertices[v].range.min);
    const int mx = static_cast<int>(p.vertices[v].range.max);
    lp.set_bounds(static_cast<int>(v), mn >= 1 ? 1.0 : 0.0,
                  mx >= 1 ? 1.0 : 0.0);
    lp.set_bounds(static_cast<int>(n + v), mn >= 2 ? 1.0 : 0.0,
                  mx >= 2 ? 1.0 : 0.0);
  }

  auto le = [&](std::vector<std::pair<int, double>> terms, double rhs,
                const std::string& name) {
    ilp::Constraint c;
    c.terms = std::move(terms);
    c.rel = ilp::Relation::kLe;
    c.rhs = rhs;
    c.name = name;
    lp.add_constraint(std::move(c));
  };

  // h_v <= g_v.
  for (std::size_t v = 0; v < n; ++v) {
    le({{static_cast<int>(n + v), 1.0}, {static_cast<int>(v), -1.0}}, 0.0,
       "tier_order_" + p.vertices[v].name);
  }
  // Monotone along edges: g_from <= g_to, h_from <= h_to.
  for (const ThreeTierEdge& e : p.edges) {
    le({{static_cast<int>(e.from), 1.0}, {static_cast<int>(e.to), -1.0}},
       0.0, "mono_g");
    le({{static_cast<int>(n + e.from), 1.0},
        {static_cast<int>(n + e.to), -1.0}},
       0.0, "mono_h");
  }
  // Mote CPU: sum (1-g) c1 <= C1  ->  -sum g c1 <= C1 - sum c1.
  {
    std::vector<std::pair<int, double>> terms;
    double total = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (p.vertices[v].cpu_mote != 0.0) {
        terms.emplace_back(static_cast<int>(v), -p.vertices[v].cpu_mote);
        total += p.vertices[v].cpu_mote;
      }
    }
    le(std::move(terms), p.mote_cpu_budget - total, "mote_cpu");
  }
  // Microserver CPU: sum (g-h) c2 <= C2.
  {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t v = 0; v < n; ++v) {
      if (p.vertices[v].cpu_micro != 0.0) {
        terms.emplace_back(static_cast<int>(v), p.vertices[v].cpu_micro);
        terms.emplace_back(static_cast<int>(n + v),
                           -p.vertices[v].cpu_micro);
      }
    }
    le(std::move(terms), p.micro_cpu_budget, "micro_cpu");
  }
  // Network budgets.
  {
    std::vector<std::pair<int, double>> t1, t2;
    for (std::size_t v = 0; v < n; ++v) {
      if (g_net[v] != 0.0) t1.emplace_back(static_cast<int>(v), g_net[v]);
      if (h_net[v] != 0.0) {
        t2.emplace_back(static_cast<int>(n + v), h_net[v]);
      }
    }
    le(std::move(t1), p.mote_net_budget, "mote_net");
    le(std::move(t2), p.micro_net_budget, "micro_net");
  }

  ilp::BranchAndBound bnb;
  ThreeTierResult res;
  res.solver = bnb.solve(lp, mip);
  if (!res.solver.has_incumbent) return res;

  res.tiers.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    const bool g = res.solver.x[v] >= 0.5;
    const bool h = res.solver.x[n + v] >= 0.5;
    res.tiers[v] = h ? Tier::kServer : (g ? Tier::kMicro : Tier::kMote);
  }
  const TierEval ev = evaluate_tiers(p, res.tiers);
  WB_ASSERT_MSG(ev.monotone && ev.respects_range,
                "solver produced an invalid tier assignment");
  res.feasible = true;
  res.mote_cpu = ev.mote_cpu;
  res.micro_cpu = ev.micro_cpu;
  res.mote_net = ev.mote_net;
  res.micro_net = ev.micro_net;
  res.objective = tier_objective(p, ev);
  return res;
}

ThreeTierProblem make_three_tier_problem(const graph::Graph& g,
                                         const graph::PinAnalysis& pins,
                                         const profile::ProfileData& pd,
                                         const profile::PlatformModel& mote,
                                         const profile::PlatformModel& micro,
                                         double events_per_sec) {
  WB_REQUIRE(events_per_sec > 0, "event rate must be positive");
  WB_REQUIRE(pins.requirement.size() == g.num_operators(),
             "pin analysis does not match graph");
  ThreeTierProblem p;
  for (graph::OperatorId v = 0; v < g.num_operators(); ++v) {
    ThreeTierVertex tv;
    tv.name = g.info(v).name;
    tv.cpu_mote = pd.cpu_fraction(mote, v, events_per_sec);
    tv.cpu_micro = pd.cpu_fraction(micro, v, events_per_sec);
    switch (pins.requirement[v]) {
      case graph::Requirement::kNode:
        tv.range = {Tier::kMote, Tier::kMote};
        break;
      case graph::Requirement::kServer:
        tv.range = {Tier::kServer, Tier::kServer};
        break;
      case graph::Requirement::kMovable:
        tv.range = {Tier::kMote, Tier::kServer};
        break;
    }
    p.vertices.push_back(std::move(tv));
  }
  for (std::size_t ei = 0; ei < g.num_edges(); ++ei) {
    const graph::Edge& e = g.edges()[ei];
    p.edges.push_back(
        ThreeTierEdge{e.from, e.to, pd.bandwidth(ei, events_per_sec)});
  }
  p.mote_cpu_budget = mote.cpu_budget;
  p.micro_cpu_budget = micro.cpu_budget;
  p.mote_net_budget = mote.radio_bytes_per_sec;
  p.micro_net_budget = micro.radio_bytes_per_sec;
  p.alpha_mote = mote.alpha;
  p.alpha_micro = micro.alpha;
  p.beta_mote = mote.beta;
  p.beta_micro = micro.beta;
  p.check();
  return p;
}

ThreeTierResult exhaustive_three_tier(const ThreeTierProblem& p) {
  p.check();
  const std::size_t n = p.vertices.size();
  WB_REQUIRE(n <= 15, "exhaustive_three_tier: too many vertices");
  ThreeTierResult best;
  std::vector<Tier> tiers(n, Tier::kMote);
  std::size_t combos = 1;
  for (std::size_t v = 0; v < n; ++v) combos *= 3;
  for (std::size_t code = 0; code < combos; ++code) {
    std::size_t c = code;
    for (std::size_t v = 0; v < n; ++v) {
      tiers[v] = static_cast<Tier>(c % 3);
      c /= 3;
    }
    const TierEval ev = evaluate_tiers(p, tiers);
    if (!ev.feasible(p)) continue;
    const double obj = tier_objective(p, ev);
    if (!best.feasible || obj < best.objective - 1e-12) {
      best.feasible = true;
      best.tiers = tiers;
      best.objective = obj;
      best.mote_cpu = ev.mote_cpu;
      best.micro_cpu = ev.micro_cpu;
      best.mote_net = ev.mote_net;
      best.micro_net = ev.micro_net;
    }
  }
  return best;
}

}  // namespace wishbone::partition
