#include "partition/partitioner.hpp"

#include <algorithm>
#include <limits>

#include "ilp/simplex.hpp"
#include "util/assert.hpp"

namespace wishbone::partition {

std::vector<Side> PartitionResult::operator_assignment(
    const PartitionProblem& solved_problem,
    std::size_t num_operators) const {
  WB_REQUIRE(feasible, "no assignment: partition was infeasible");
  return expand_assignment(solved_problem, sides, num_operators);
}

PartitionResult solve_partition(const PartitionProblem& p_in,
                                const PartitionOptions& opts) {
  PartitionResult res;

  // Hand-built problems may omit the ops mapping; seed it with vertex
  // ids so condensed results can be expanded back.
  PartitionProblem p = p_in;
  for (std::size_t v = 0; v < p.vertices.size(); ++v) {
    if (p.vertices[v].ops.empty()) p.vertices[v].ops = {v};
  }

  PartitionProblem work = opts.preprocess ? preprocess(p, &res.prep) : p;
  if (!opts.preprocess) {
    res.prep.vertices_before = res.prep.vertices_after = p.num_vertices();
    res.prep.edges_before = res.prep.edges_after = p.num_edges();
  }

  ilp::LinearProgram model = build_ilp(work, opts.formulation);

  ilp::MipOptions mip = opts.mip;
  if (opts.warm_start && opts.formulation == Formulation::kRestricted) {
    // Threshold-round shallow LP relaxations into feasible cuts inside
    // branch and bound (no extra LP solve needed: the root relaxation
    // is already computed there). The root basis that produced the
    // rounded incumbent stays live in the solver's shared SimplexState,
    // so every subsequent node LP warm-starts from it — the rounding
    // warm start and the basis warm start ride the same relaxation.
    mip.rounding_hook =
        [&work](const std::vector<double>& lp_x)
        -> std::optional<std::vector<double>> {
      return threshold_round(work, lp_x);
    };
    // Round every node's relaxation, not just shallow ones: a threshold
    // sweep costs O(V+E) per distinct f value — noise next to the node
    // LP — and the EEG instances' deep nodes yield cuts the root
    // relaxation never suggests. Better incumbents also feed the
    // solver's reduced-cost fixing, which needs a tight cutoff to fire.
    mip.rounding_depth = std::numeric_limits<std::size_t>::max();
  }
  // opts.warm_start only governs the rounding hook; the solver knobs
  // (warm_lp, reduced_cost_fixing, pricing, warm_basis) stay whatever
  // the caller put in opts.mip — ablations wanting the full seed
  // solver set those fields explicitly.

  ilp::BranchAndBound bnb;
  res.solver = bnb.solve(model, mip);
  // Callers chaining related solves (rate search, repeated sweeps) pick
  // the final basis up from res.solver.final_basis and thread it into
  // the next solve's opts.mip.warm_basis; under the LU engine the load
  // costs one sparse refactorization instead of an O(m^3) Gauss-Jordan,
  // and res.solver.warm_basis_loaded reports whether the inherit took.
  if (!res.solver.has_incumbent) {
    res.feasible = false;
    return res;
  }

  const std::vector<Side> work_sides = decode_solution(work, res.solver.x);
  const AssignmentEval ev = evaluate_assignment(work, work_sides);
  WB_ASSERT_MSG(ev.respects_pins, "solver produced a pin-violating cut");
  res.feasible = true;
  res.cpu_used = ev.cpu;
  res.net_used = ev.net;
  res.ram_used = ev.ram;
  res.rom_used = ev.rom;
  res.objective = objective_of(work, ev);

  // Expand condensed vertices back to the caller's problem vertices.
  // `work.vertices[i].ops` holds the ops each condensed vertex covers;
  // for a problem built by make_problem those are original operator
  // ids, and for a hand-built problem they are the caller's vertex ids
  // (make_problem seeds ops = {v}).
  std::size_t max_op = 0;
  for (const ProblemVertex& v : p.vertices) {
    for (OperatorId op : v.ops) max_op = std::max(max_op, op + 1);
  }
  const std::vector<Side> per_op =
      expand_assignment(work, work_sides, max_op);
  // Map back to p's vertex order via each vertex's first op id.
  res.sides.resize(p.num_vertices());
  for (std::size_t v = 0; v < p.num_vertices(); ++v) {
    WB_ASSERT(!p.vertices[v].ops.empty());
    res.sides[v] = per_op[p.vertices[v].ops.front()];
  }
  res.node_partition_size = static_cast<std::size_t>(
      std::count(res.sides.begin(), res.sides.end(), Side::kNode));
  return res;
}

PartitionResult partition_graph(const graph::Graph& g,
                                const profile::ProfileData& pd,
                                const profile::PlatformModel& plat,
                                double events_per_sec, graph::Mode mode,
                                const PartitionOptions& opts) {
  const graph::PinAnalysis pins = graph::analyze_pins(g, mode);
  const PartitionProblem p =
      make_problem(g, pins, pd, plat, events_per_sec);
  PartitionResult res = solve_partition(p, opts);
  if (res.feasible) {
    res.sides = expand_assignment(p, res.sides, g.num_operators());
    res.node_partition_size = static_cast<std::size_t>(
        std::count(res.sides.begin(), res.sides.end(), Side::kNode));
  }
  return res;
}

}  // namespace wishbone::partition
