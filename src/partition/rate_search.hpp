// Data rate as a free variable (§4.3): when no partition fits at the
// requested rate, binary-search the largest input rate that still
// admits a feasible partition. Validity rests on the monotonicity
// argument of §4.3: CPU and network load scale (at least weakly)
// monotonically with the input rate, so feasibility is a downward-
// closed property of the rate.
#pragma once

#include <functional>

#include "partition/partitioner.hpp"

namespace wishbone::partition {

struct RateSearchOptions {
  double min_rate = 1e-3;     ///< lower bracket (events/s)
  double max_rate = 1e6;      ///< upper bracket (events/s)
  double rel_tol = 0.01;      ///< terminate when hi-lo <= rel_tol*lo
  std::size_t max_iterations = 60;
  PartitionOptions partition;
};

struct RateSearchResult {
  bool any_feasible = false;
  double max_rate = 0.0;            ///< highest rate proven feasible
  PartitionResult partition_at_max; ///< the cut found at that rate
  std::size_t partitions_solved = 0;

  // Solver totals across *all* probes (partition_at_max only carries
  // the winning probe's): how much LP work the whole search cost and
  // how the basis engine amortized it over the threaded bases.
  std::size_t total_bnb_nodes = 0;
  std::size_t total_lp_iterations = 0;
  std::size_t total_basis_refactorizations = 0;
  std::size_t total_eta_updates = 0;
  /// Probes whose inherited basis actually factorized and was used
  /// (shape mismatches and singular inherits fall back cold).
  std::size_t probes_with_inherited_basis = 0;
  /// Probes that *rejected* the inherited basis because the formulation
  /// changed shape or constraint structure between rates (preprocessing
  /// merged differently, a resource row appeared/vanished). Those
  /// probes cold-start — the stale-basis compatibility check in
  /// Basis::compatible_with / SimplexState::load_basis at work.
  std::size_t probes_with_rejected_basis = 0;
  // Parallel-search totals across all probes (opts.partition.mip.threads
  // picks the worker count per solve; see MipOptions::threads).
  std::size_t total_steals = 0;
  std::size_t total_snapshot_reloads = 0;
  double total_idle_s = 0.0;
  // Re-entry totals across all probes: how node re-solves restored
  // primal feasibility when opts.partition.mip.lp.reentry selects the
  // dual simplex (ReentryKind::kDual) for the warm probe chain.
  std::size_t total_dual_reentries = 0;
  std::size_t total_phase1_reentries = 0;
  std::size_t total_phase1_fallbacks = 0;
};

/// `problem_at(rate)` must build the partition problem for a given
/// source event rate (typically by rescaling profile data).
[[nodiscard]] RateSearchResult max_sustainable_rate(
    const std::function<PartitionProblem(double)>& problem_at,
    const RateSearchOptions& opts = {});

}  // namespace wishbone::partition
