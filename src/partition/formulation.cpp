#include "partition/formulation.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace wishbone::partition {

ilp::LinearProgram build_ilp(const PartitionProblem& p, Formulation form) {
  p.check();
  ilp::LinearProgram lp;

  // f_v indicators with pinning folded into the bounds (Eq. 1).
  for (std::size_t v = 0; v < p.vertices.size(); ++v) {
    const ProblemVertex& pv = p.vertices[v];
    // Objective contribution: alpha * c_v (Eq. 5 CPU term). Network
    // terms are added below, per formulation.
    const int idx = lp.add_binary("f_" + pv.name, p.alpha * pv.cpu);
    WB_ASSERT(idx == static_cast<int>(v));
    if (pv.req == Requirement::kNode) lp.set_bounds(idx, 1.0, 1.0);
    if (pv.req == Requirement::kServer) lp.set_bounds(idx, 0.0, 0.0);
  }

  // CPU budget (Eq. 2): sum f_v c_v <= C.
  {
    ilp::Constraint cpu;
    cpu.name = "cpu_budget";
    cpu.rel = ilp::Relation::kLe;
    cpu.rhs = p.cpu_budget;
    for (std::size_t v = 0; v < p.vertices.size(); ++v) {
      if (p.vertices[v].cpu != 0.0) {
        cpu.terms.emplace_back(static_cast<int>(v), p.vertices[v].cpu);
      }
    }
    lp.add_constraint(std::move(cpu));
  }

  // Memory budgets (§4.2.1): identical knapsack rows over f_v, added
  // only when the platform actually constrains the resource.
  auto add_memory_row = [&lp, &p](const char* name, double budget,
                                  auto weight_of) {
    if (budget >= kNoResourceBudget) return;
    ilp::Constraint row;
    row.name = name;
    row.rel = ilp::Relation::kLe;
    row.rhs = budget;
    for (std::size_t v = 0; v < p.vertices.size(); ++v) {
      const double w = weight_of(p.vertices[v]);
      if (w != 0.0) row.terms.emplace_back(static_cast<int>(v), w);
    }
    lp.add_constraint(std::move(row));
  };
  add_memory_row("ram_budget", p.ram_budget,
                 [](const ProblemVertex& v) { return v.ram_bytes; });
  add_memory_row("rom_budget", p.rom_budget,
                 [](const ProblemVertex& v) { return v.rom_bytes; });

  if (form == Formulation::kRestricted) {
    // Unidirectional flow (Eq. 6): f_u - f_v >= 0 per edge. The network
    // load is then linear in f (Eq. 7); fold beta * net into the
    // objective coefficients and add the net budget as one row.
    std::vector<double> net_coeff(p.vertices.size(), 0.0);
    for (const ProblemEdge& e : p.edges) {
      ilp::Constraint mono;
      mono.name = "mono_" + p.vertices[e.from].name + "_" +
                  p.vertices[e.to].name;
      mono.rel = ilp::Relation::kGe;
      mono.rhs = 0.0;
      mono.terms.emplace_back(static_cast<int>(e.from), 1.0);
      mono.terms.emplace_back(static_cast<int>(e.to), -1.0);
      lp.add_constraint(std::move(mono));
      net_coeff[e.from] += e.bandwidth;
      net_coeff[e.to] -= e.bandwidth;
    }
    ilp::Constraint net;
    net.name = "net_budget";
    net.rel = ilp::Relation::kLe;
    net.rhs = p.net_budget;
    for (std::size_t v = 0; v < p.vertices.size(); ++v) {
      if (net_coeff[v] != 0.0) {
        net.terms.emplace_back(static_cast<int>(v), net_coeff[v]);
      }
    }
    lp.add_constraint(std::move(net));
    // Objective: existing alpha*c coefficients plus beta * net terms.
    // add_binary fixed the objective coefficient, so rebuild via a
    // second pass is impossible; instead we appended net coefficients
    // here by constructing the variable objective up front. Since we
    // could not know net_coeff before scanning edges, adjust through a
    // dedicated helper variable trick is overkill — rebuild instead.
    ilp::LinearProgram lp2;
    for (std::size_t v = 0; v < p.vertices.size(); ++v) {
      const ProblemVertex& pv = p.vertices[v];
      const int idx = lp2.add_binary(
          "f_" + pv.name, p.alpha * pv.cpu + p.beta * net_coeff[v]);
      WB_ASSERT(idx == static_cast<int>(v));
      if (pv.req == Requirement::kNode) lp2.set_bounds(idx, 1.0, 1.0);
      if (pv.req == Requirement::kServer) lp2.set_bounds(idx, 0.0, 0.0);
    }
    for (const ilp::Constraint& c : lp.constraints()) {
      lp2.add_constraint(c);
    }
    return lp2;
  }

  // General formulation (Eq. 3–5): e_uv, e'_uv >= 0 per edge.
  ilp::Constraint net;
  net.name = "net_budget";
  net.rel = ilp::Relation::kLe;
  net.rhs = p.net_budget;
  for (std::size_t ei = 0; ei < p.edges.size(); ++ei) {
    const ProblemEdge& e = p.edges[ei];
    const std::string tag = std::to_string(ei);
    // In any optimal solution e + e' ends up |f_u - f_v| (Eq. 3 keeps
    // them >= the two differences; minimization pulls them down), so an
    // upper bound of 1 is valid and tightens the relaxation.
    const int euv = lp.add_variable("e_" + tag, 0.0, 1.0,
                                    p.beta * e.bandwidth, false);
    const int epuv = lp.add_variable("e'_" + tag, 0.0, 1.0,
                                     p.beta * e.bandwidth, false);
    ilp::Constraint c1;  // f_u - f_v + e_uv >= 0
    c1.name = "cut+_" + tag;
    c1.rel = ilp::Relation::kGe;
    c1.rhs = 0.0;
    c1.terms = {{static_cast<int>(e.from), 1.0},
                {static_cast<int>(e.to), -1.0},
                {euv, 1.0}};
    lp.add_constraint(std::move(c1));
    ilp::Constraint c2;  // f_v - f_u + e'_uv >= 0
    c2.name = "cut-_" + tag;
    c2.rel = ilp::Relation::kGe;
    c2.rhs = 0.0;
    c2.terms = {{static_cast<int>(e.to), 1.0},
                {static_cast<int>(e.from), -1.0},
                {epuv, 1.0}};
    lp.add_constraint(std::move(c2));
    net.terms.emplace_back(euv, e.bandwidth);
    net.terms.emplace_back(epuv, e.bandwidth);
  }
  lp.add_constraint(std::move(net));
  return lp;
}

std::vector<Side> decode_solution(const PartitionProblem& p,
                                  const std::vector<double>& x) {
  WB_REQUIRE(x.size() >= p.vertices.size(), "solution vector too short");
  std::vector<Side> sides(p.vertices.size());
  for (std::size_t v = 0; v < p.vertices.size(); ++v) {
    sides[v] = x[v] >= 0.5 ? Side::kNode : Side::kServer;
  }
  return sides;
}

std::optional<std::vector<double>> threshold_round(
    const PartitionProblem& p, const std::vector<double>& relaxed_f) {
  WB_REQUIRE(relaxed_f.size() >= p.vertices.size(),
             "relaxation vector too short");
  // Candidate thresholds: just above each distinct fractional value,
  // plus the extremes (all-server / everything-with-f=1).
  std::set<double> taus{0.5};
  for (std::size_t v = 0; v < p.vertices.size(); ++v) {
    taus.insert(relaxed_f[v] + 1e-9);
  }
  taus.insert(1e-9);   // node side = every positive f
  taus.insert(1.0);    // node side = only f == 1 (within tolerance)

  double best_obj = ilp::kInf;
  std::optional<std::vector<double>> best;
  for (double tau : taus) {
    std::vector<Side> sides(p.vertices.size());
    for (std::size_t v = 0; v < p.vertices.size(); ++v) {
      // Pins always override the threshold.
      if (p.vertices[v].req == Requirement::kNode) {
        sides[v] = Side::kNode;
      } else if (p.vertices[v].req == Requirement::kServer) {
        sides[v] = Side::kServer;
      } else {
        sides[v] = relaxed_f[v] >= tau ? Side::kNode : Side::kServer;
      }
    }
    const AssignmentEval ev = evaluate_assignment(p, sides);
    if (!ev.feasible(p) || !ev.unidirectional) continue;
    const double obj = objective_of(p, ev);
    if (obj < best_obj) {
      best_obj = obj;
      std::vector<double> x(p.vertices.size());
      for (std::size_t v = 0; v < p.vertices.size(); ++v) {
        x[v] = sides[v] == Side::kNode ? 1.0 : 0.0;
      }
      best = std::move(x);
    }
  }
  return best;
}

}  // namespace wishbone::partition
