#include "partition/baselines.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace wishbone::partition {

namespace {

BaselineResult evaluate_candidate(const PartitionProblem& p,
                                  std::vector<Side> sides,
                                  BaselineResult best, std::size_t* seen) {
  ++*seen;
  const AssignmentEval ev = evaluate_assignment(p, sides);
  if (!ev.respects_pins || !ev.unidirectional || !ev.feasible(p)) {
    return best;
  }
  const double obj = objective_of(p, ev);
  if (!best.feasible || obj < best.objective - 1e-12) {
    best.feasible = true;
    best.sides = std::move(sides);
    best.objective = obj;
    best.cpu_used = ev.cpu;
    best.net_used = ev.net;
  }
  return best;
}

}  // namespace

BaselineResult exhaustive_partition(const PartitionProblem& p) {
  p.check();
  std::vector<std::size_t> movable;
  for (std::size_t v = 0; v < p.vertices.size(); ++v) {
    if (p.vertices[v].req == Requirement::kMovable) movable.push_back(v);
  }
  WB_REQUIRE(movable.size() <= 24,
             "exhaustive_partition: too many movable vertices");

  std::vector<Side> base(p.vertices.size(), Side::kServer);
  for (std::size_t v = 0; v < p.vertices.size(); ++v) {
    if (p.vertices[v].req == Requirement::kNode) base[v] = Side::kNode;
  }

  BaselineResult best;
  std::size_t seen = 0;
  const std::size_t combos = std::size_t{1} << movable.size();
  for (std::size_t mask = 0; mask < combos; ++mask) {
    std::vector<Side> sides = base;
    for (std::size_t i = 0; i < movable.size(); ++i) {
      sides[movable[i]] =
          (mask >> i) & 1 ? Side::kNode : Side::kServer;
    }
    best = evaluate_candidate(p, std::move(sides), std::move(best), &seen);
  }
  best.evaluated = seen;
  return best;
}

std::vector<PipelineCut> pipeline_cuts(const PartitionProblem& p) {
  p.check();
  // Verify the DAG is one chain.
  std::vector<std::size_t> indeg(p.vertices.size(), 0),
      outdeg(p.vertices.size(), 0);
  for (const ProblemEdge& e : p.edges) {
    ++outdeg[e.from];
    ++indeg[e.to];
  }
  for (std::size_t v = 0; v < p.vertices.size(); ++v) {
    WB_REQUIRE(indeg[v] <= 1 && outdeg[v] <= 1,
               "pipeline_cuts: problem is not a linear chain");
  }
  const std::vector<std::size_t> order = p.topo_order();

  std::vector<PipelineCut> cuts;
  cuts.reserve(p.vertices.size() + 1);
  for (std::size_t prefix = 0; prefix <= order.size(); ++prefix) {
    std::vector<Side> sides(p.vertices.size(), Side::kServer);
    for (std::size_t i = 0; i < prefix; ++i) sides[order[i]] = Side::kNode;
    const AssignmentEval ev = evaluate_assignment(p, sides);
    PipelineCut c;
    c.prefix_len = prefix;
    c.feasible = ev.respects_pins && ev.unidirectional && ev.feasible(p);
    c.objective = objective_of(p, ev);
    c.cpu_used = ev.cpu;
    c.net_used = ev.net;
    cuts.push_back(c);
  }
  return cuts;
}

BaselineResult greedy_partition(const PartitionProblem& p) {
  p.check();
  std::vector<std::vector<std::size_t>> preds(p.vertices.size());
  for (const ProblemEdge& e : p.edges) preds[e.to].push_back(e.from);

  std::vector<Side> sides(p.vertices.size(), Side::kServer);
  for (std::size_t v = 0; v < p.vertices.size(); ++v) {
    if (p.vertices[v].req == Requirement::kNode) sides[v] = Side::kNode;
  }

  std::size_t seen = 0;
  AssignmentEval cur = evaluate_assignment(p, sides);
  for (;;) {
    // Frontier: movable server vertices whose predecessors are all on
    // the node (keeps the cut unidirectional).
    std::size_t best_v = static_cast<std::size_t>(-1);
    double best_obj = std::numeric_limits<double>::infinity();
    AssignmentEval best_ev;
    for (std::size_t v = 0; v < p.vertices.size(); ++v) {
      if (sides[v] == Side::kNode) continue;
      if (p.vertices[v].req != Requirement::kMovable) continue;
      bool frontier = true;
      for (std::size_t u : preds[v]) {
        if (sides[u] != Side::kNode) {
          frontier = false;
          break;
        }
      }
      if (!frontier) continue;
      sides[v] = Side::kNode;
      const AssignmentEval ev = evaluate_assignment(p, sides);
      ++seen;
      sides[v] = Side::kServer;
      if (ev.cpu > p.cpu_budget + 1e-9) continue;
      const double obj = objective_of(p, ev);
      if (obj < best_obj) {
        best_obj = obj;
        best_v = v;
        best_ev = ev;
      }
    }
    if (best_v == static_cast<std::size_t>(-1)) break;
    const bool cur_net_infeasible = cur.net > p.net_budget + 1e-9;
    const bool improves = best_obj < objective_of(p, cur) - 1e-12;
    if (!improves && !cur_net_infeasible) break;
    sides[best_v] = Side::kNode;
    cur = best_ev;
  }

  BaselineResult res;
  res.evaluated = seen;
  res.sides = sides;
  res.cpu_used = cur.cpu;
  res.net_used = cur.net;
  res.objective = objective_of(p, cur);
  res.feasible = cur.respects_pins && cur.unidirectional && cur.feasible(p);
  return res;
}

BaselineResult server_baseline(const PartitionProblem& p) {
  p.check();
  std::vector<Side> sides(p.num_vertices(), Side::kServer);
  for (std::size_t v = 0; v < p.num_vertices(); ++v) {
    if (p.vertices[v].req == Requirement::kNode) sides[v] = Side::kNode;
  }
  const AssignmentEval ev = evaluate_assignment(p, sides);
  BaselineResult res;
  res.evaluated = 1;
  res.sides = std::move(sides);
  res.cpu_used = ev.cpu;
  res.net_used = ev.net;
  res.objective = objective_of(p, ev);
  res.feasible = ev.respects_pins && ev.unidirectional && ev.feasible(p);
  return res;
}

}  // namespace wishbone::partition
