#include "partition/preprocess.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace wishbone::partition {

namespace {

bool pins_compatible(Requirement a, Requirement b) {
  return !((a == Requirement::kNode && b == Requirement::kServer) ||
           (a == Requirement::kServer && b == Requirement::kNode));
}

Requirement merge_req(Requirement a, Requirement b) {
  WB_ASSERT(pins_compatible(a, b));
  if (a == Requirement::kMovable) return b;
  return a;
}

}  // namespace

PartitionProblem preprocess(const PartitionProblem& p,
                            PreprocessStats* stats) {
  p.check();
  PartitionProblem cur = p;
  // Hand-built problems may omit the op mapping; seed it with vertex
  // ids so merged clusters stay traceable.
  for (std::size_t v = 0; v < cur.vertices.size(); ++v) {
    if (cur.vertices[v].ops.empty()) cur.vertices[v].ops = {v};
  }
  std::size_t rounds = 0;

  for (;;) {
    ++rounds;
    const std::size_t n = cur.vertices.size();
    std::vector<std::size_t> out_deg(n, 0), in_deg(n, 0);
    std::vector<double> in_bw(n, 0.0);
    std::vector<std::size_t> only_out_edge(n, static_cast<std::size_t>(-1));
    for (std::size_t ei = 0; ei < cur.edges.size(); ++ei) {
      const ProblemEdge& e = cur.edges[ei];
      ++out_deg[e.from];
      ++in_deg[e.to];
      in_bw[e.to] += e.bandwidth;
      only_out_edge[e.from] = ei;
    }

    // Union-find over vertices for this round's contractions.
    std::vector<std::size_t> parent(n);
    for (std::size_t v = 0; v < n; ++v) parent[v] = v;
    auto find = [&](std::size_t v) {
      while (parent[v] != v) {
        parent[v] = parent[parent[v]];
        v = parent[v];
      }
      return v;
    };

    std::size_t merges = 0;
    for (std::size_t u = 0; u < n; ++u) {
      if (out_deg[u] != 1 || in_deg[u] == 0) continue;
      const ProblemEdge& e = cur.edges[only_out_edge[u]];
      const std::size_t v = e.to;
      if (e.bandwidth + 1e-12 < in_bw[u]) continue;  // u reduces data
      const Requirement ru = cur.vertices[find(u)].req;
      const Requirement rv = cur.vertices[find(v)].req;
      // If u is node-pinned, u->v may be a required cut point unless v
      // is node-pinned too.
      if (ru == Requirement::kNode && rv != Requirement::kNode) continue;
      if (!pins_compatible(ru, rv)) continue;
      const std::size_t a = find(u);
      const std::size_t b = find(v);
      if (a == b) continue;
      parent[b] = a;
      cur.vertices[a].req = merge_req(ru, rv);
      ++merges;
    }

    if (merges == 0) break;

    // Build the condensed problem for the next round.
    std::vector<std::size_t> cluster_id(n, static_cast<std::size_t>(-1));
    PartitionProblem next;
    next.cpu_budget = cur.cpu_budget;
    next.net_budget = cur.net_budget;
    next.ram_budget = cur.ram_budget;
    next.rom_budget = cur.rom_budget;
    next.alpha = cur.alpha;
    next.beta = cur.beta;
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t root = find(v);
      if (cluster_id[root] == static_cast<std::size_t>(-1)) {
        cluster_id[root] = next.vertices.size();
        ProblemVertex pv;
        pv.name = cur.vertices[root].name;
        pv.req = cur.vertices[root].req;
        next.vertices.push_back(std::move(pv));
      }
      ProblemVertex& cl = next.vertices[cluster_id[root]];
      cl.cpu += cur.vertices[v].cpu;
      cl.ram_bytes += cur.vertices[v].ram_bytes;
      cl.rom_bytes += cur.vertices[v].rom_bytes;
      cl.ops.insert(cl.ops.end(), cur.vertices[v].ops.begin(),
                    cur.vertices[v].ops.end());
      if (v != root) cl.name += "+" + cur.vertices[v].name;
    }
    // Sum parallel inter-cluster edges; drop intra-cluster ones.
    std::map<std::pair<std::size_t, std::size_t>, double> agg;
    for (const ProblemEdge& e : cur.edges) {
      const std::size_t a = cluster_id[find(e.from)];
      const std::size_t b = cluster_id[find(e.to)];
      if (a == b) continue;
      agg[{a, b}] += e.bandwidth;
    }
    for (const auto& [key, bw] : agg) {
      next.edges.push_back(ProblemEdge{key.first, key.second, bw});
    }
    next.check();
    cur = std::move(next);
  }

  if (stats != nullptr) {
    stats->vertices_before = p.vertices.size();
    stats->vertices_after = cur.vertices.size();
    stats->edges_before = p.edges.size();
    stats->edges_after = cur.edges.size();
    stats->rounds = rounds;
  }
  return cur;
}

}  // namespace wishbone::partition
